package view

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ringcast/internal/ident"
)

func TestNewPanicsOnNonPositiveCap(t *testing.T) {
	for _, c := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", c)
				}
			}()
			New(c)
		}()
	}
}

func TestAddRejectsDuplicatesAndOverflow(t *testing.T) {
	v := New(2)
	if !v.Add(Entry{Node: 1}) {
		t.Fatal("first add failed")
	}
	if v.Add(Entry{Node: 1, Age: 9}) {
		t.Fatal("duplicate add succeeded")
	}
	if !v.Add(Entry{Node: 2}) {
		t.Fatal("second add failed")
	}
	if v.Add(Entry{Node: 3}) {
		t.Fatal("overflow add succeeded")
	}
	if v.Len() != 2 || !v.Full() {
		t.Fatalf("Len=%d Full=%v, want 2,true", v.Len(), v.Full())
	}
}

func TestInsertKeepsYoungerAge(t *testing.T) {
	v := New(4)
	v.Add(Entry{Node: 1, Age: 5})
	if !v.Insert(Entry{Node: 1, Age: 2, Addr: "a"}) {
		t.Fatal("Insert with younger age reported no change")
	}
	e, _ := v.Get(1)
	if e.Age != 2 || e.Addr != "a" {
		t.Fatalf("entry = %+v, want age 2 addr a", e)
	}
	if v.Insert(Entry{Node: 1, Age: 7}) {
		t.Fatal("Insert with older age reported change")
	}
	if e, _ := v.Get(1); e.Age != 2 {
		t.Fatalf("age overwritten to %d", e.Age)
	}
}

func TestRemove(t *testing.T) {
	v := New(3)
	v.Add(Entry{Node: 1})
	v.Add(Entry{Node: 2})
	if !v.Remove(1) {
		t.Fatal("Remove(1) failed")
	}
	if v.Remove(1) {
		t.Fatal("second Remove(1) succeeded")
	}
	if v.Contains(1) || !v.Contains(2) || v.Len() != 1 {
		t.Fatalf("unexpected state after remove: %v", v)
	}
}

func TestAgeAllAndOldest(t *testing.T) {
	v := New(3)
	v.Add(Entry{Node: 1, Age: 0})
	v.Add(Entry{Node: 2, Age: 4})
	v.AgeAll()
	e, ok := v.Oldest()
	if !ok || e.Node != 2 || e.Age != 5 {
		t.Fatalf("Oldest = %+v ok=%v, want node 2 age 5", e, ok)
	}
	if e1, _ := v.Get(1); e1.Age != 1 {
		t.Fatalf("age of node 1 = %d, want 1", e1.Age)
	}
}

func TestOldestEmpty(t *testing.T) {
	v := New(1)
	if _, ok := v.Oldest(); ok {
		t.Fatal("Oldest on empty view returned ok")
	}
	if _, ok := v.RandomEntry(rand.New(rand.NewSource(1))); ok {
		t.Fatal("RandomEntry on empty view returned ok")
	}
}

func TestRandomEntriesDistinctAndExcluding(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	v := New(10)
	for i := 1; i <= 10; i++ {
		v.Add(Entry{Node: ident.ID(i)})
	}
	got := v.RandomEntries(5, rng, 3, 7)
	if len(got) != 5 {
		t.Fatalf("len = %d, want 5", len(got))
	}
	seen := map[ident.ID]bool{}
	for _, e := range got {
		if e.Node == 3 || e.Node == 7 {
			t.Fatalf("excluded node %v returned", e.Node)
		}
		if seen[e.Node] {
			t.Fatalf("duplicate node %v", e.Node)
		}
		seen[e.Node] = true
	}
	// Asking for more than available returns all non-excluded.
	if got := v.RandomEntries(100, rng, 1); len(got) != 9 {
		t.Fatalf("len = %d, want 9", len(got))
	}
	if got := v.RandomEntries(0, rng); got != nil {
		t.Fatalf("RandomEntries(0) = %v, want nil", got)
	}
}

func TestEntriesIsACopy(t *testing.T) {
	v := New(2)
	v.Add(Entry{Node: 1, Age: 1})
	es := v.Entries()
	es[0].Age = 99
	if e, _ := v.Get(1); e.Age != 1 {
		t.Fatal("Entries leaked internal storage")
	}
}

func TestSortedByAge(t *testing.T) {
	v := New(3)
	v.Add(Entry{Node: 1, Age: 5})
	v.Add(Entry{Node: 2, Age: 1})
	v.Add(Entry{Node: 3, Age: 3})
	s := v.SortedByAge()
	if s[0].Node != 2 || s[1].Node != 3 || s[2].Node != 1 {
		t.Fatalf("unexpected order: %v", s)
	}
}

// Property: no sequence of operations can produce duplicates, self-violations
// of capacity, or entries the caller never supplied.
func TestViewInvariantsProperty(t *testing.T) {
	f := func(ops []uint16, capSeed uint8) bool {
		capacity := int(capSeed%16) + 1
		v := New(capacity)
		rng := rand.New(rand.NewSource(int64(capSeed)))
		for _, op := range ops {
			id := ident.ID(op%37 + 1)
			switch op % 5 {
			case 0:
				v.Add(Entry{Node: id, Age: uint32(op % 11)})
			case 1:
				v.Insert(Entry{Node: id, Age: uint32(op % 7)})
			case 2:
				v.Remove(id)
			case 3:
				v.AgeAll()
			case 4:
				v.RandomEntries(int(op%5), rng)
			}
			if v.Len() > capacity {
				return false
			}
			seen := map[ident.ID]bool{}
			for _, e := range v.Entries() {
				if e.Node == ident.Nil || seen[e.Node] {
					return false
				}
				seen[e.Node] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestStringSmoke(t *testing.T) {
	v := New(2)
	v.Add(Entry{Node: 1, Age: 2})
	if v.String() == "" {
		t.Fatal("empty String")
	}
}

// TestInsertRefreshesAddr pins the restart-on-new-address fix: a non-empty
// address must replace the stored one even when the offered age ties or is
// older, or a restarted node keeps its stale address in peers' views until
// eviction.
func TestInsertRefreshesAddr(t *testing.T) {
	v := New(4)
	v.Add(Entry{Node: 1, Addr: "10.0.0.1:7000", Age: 5})

	// Same age, new address: must update and report a change.
	if !v.Insert(Entry{Node: 1, Addr: "10.0.0.2:7000", Age: 5}) {
		t.Fatal("Insert with tying age and new addr reported no change")
	}
	if e, _ := v.Get(1); e.Addr != "10.0.0.2:7000" || e.Age != 5 {
		t.Fatalf("entry = %v@%d/%s, want addr 10.0.0.2:7000 age 5", e.Node, e.Age, e.Addr)
	}

	// Strictly older entry with a different address: a pre-restart entry
	// still circulating through gossip must NOT resurrect a dead address.
	if v.Insert(Entry{Node: 1, Addr: "10.0.0.9:7000", Age: 9}) {
		t.Fatal("Insert with strictly older age reported a change")
	}
	if e, _ := v.Get(1); e.Addr != "10.0.0.2:7000" || e.Age != 5 {
		t.Fatalf("stale entry overwrote addr: got %s/%d, want 10.0.0.2:7000/5", e.Addr, e.Age)
	}

	// Younger entry with a new address (the restart case): both update.
	if !v.Insert(Entry{Node: 1, Addr: "10.0.0.3:7000", Age: 0}) {
		t.Fatal("Insert with younger age and new addr reported no change")
	}
	if e, _ := v.Get(1); e.Addr != "10.0.0.3:7000" || e.Age != 0 {
		t.Fatalf("entry addr/age = %s/%d, want 10.0.0.3:7000/0", e.Addr, e.Age)
	}

	// Empty address never wipes a known one.
	v.Insert(Entry{Node: 1, Addr: "", Age: 0})
	if e, _ := v.Get(1); e.Addr != "10.0.0.3:7000" {
		t.Fatalf("empty addr wiped stored addr: %s", e.Addr)
	}

	// Identical entry: no change.
	if v.Insert(Entry{Node: 1, Addr: "10.0.0.3:7000", Age: 7}) {
		t.Fatal("Insert with same addr and older age reported a change")
	}
}

// TestAllZeroCopySemantics documents the All/AppendTo contract.
func TestAllZeroCopySemantics(t *testing.T) {
	v := New(4)
	v.Add(Entry{Node: 1, Age: 1})
	v.Add(Entry{Node: 2, Age: 2})
	all := v.All()
	if len(all) != 2 || all[0].Node != 1 || all[1].Node != 2 {
		t.Fatalf("All = %v", all)
	}
	if v.EntryAt(1).Node != 2 {
		t.Fatalf("EntryAt(1) = %v", v.EntryAt(1))
	}
	buf := make([]Entry, 0, 8)
	got := v.AppendTo(buf)
	if len(got) != 2 {
		t.Fatalf("AppendTo len = %d", len(got))
	}
	// Mutating the copy must not affect the view.
	got[0].Age = 99
	if v.EntryAt(0).Age != 1 {
		t.Fatal("AppendTo aliases view storage")
	}
	v.Reset()
	if v.Len() != 0 || v.Cap() != 4 {
		t.Fatalf("Reset: len=%d cap=%d", v.Len(), v.Cap())
	}
}
