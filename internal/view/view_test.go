package view

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ringcast/internal/ident"
)

func TestNewPanicsOnNonPositiveCap(t *testing.T) {
	for _, c := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", c)
				}
			}()
			New(c)
		}()
	}
}

func TestAddRejectsDuplicatesAndOverflow(t *testing.T) {
	v := New(2)
	if !v.Add(Entry{Node: 1}) {
		t.Fatal("first add failed")
	}
	if v.Add(Entry{Node: 1, Age: 9}) {
		t.Fatal("duplicate add succeeded")
	}
	if !v.Add(Entry{Node: 2}) {
		t.Fatal("second add failed")
	}
	if v.Add(Entry{Node: 3}) {
		t.Fatal("overflow add succeeded")
	}
	if v.Len() != 2 || !v.Full() {
		t.Fatalf("Len=%d Full=%v, want 2,true", v.Len(), v.Full())
	}
}

func TestInsertKeepsYoungerAge(t *testing.T) {
	v := New(4)
	v.Add(Entry{Node: 1, Age: 5})
	if !v.Insert(Entry{Node: 1, Age: 2, Addr: "a"}) {
		t.Fatal("Insert with younger age reported no change")
	}
	e, _ := v.Get(1)
	if e.Age != 2 || e.Addr != "a" {
		t.Fatalf("entry = %+v, want age 2 addr a", e)
	}
	if v.Insert(Entry{Node: 1, Age: 7}) {
		t.Fatal("Insert with older age reported change")
	}
	if e, _ := v.Get(1); e.Age != 2 {
		t.Fatalf("age overwritten to %d", e.Age)
	}
}

func TestRemove(t *testing.T) {
	v := New(3)
	v.Add(Entry{Node: 1})
	v.Add(Entry{Node: 2})
	if !v.Remove(1) {
		t.Fatal("Remove(1) failed")
	}
	if v.Remove(1) {
		t.Fatal("second Remove(1) succeeded")
	}
	if v.Contains(1) || !v.Contains(2) || v.Len() != 1 {
		t.Fatalf("unexpected state after remove: %v", v)
	}
}

func TestAgeAllAndOldest(t *testing.T) {
	v := New(3)
	v.Add(Entry{Node: 1, Age: 0})
	v.Add(Entry{Node: 2, Age: 4})
	v.AgeAll()
	e, ok := v.Oldest()
	if !ok || e.Node != 2 || e.Age != 5 {
		t.Fatalf("Oldest = %+v ok=%v, want node 2 age 5", e, ok)
	}
	if e1, _ := v.Get(1); e1.Age != 1 {
		t.Fatalf("age of node 1 = %d, want 1", e1.Age)
	}
}

func TestOldestEmpty(t *testing.T) {
	v := New(1)
	if _, ok := v.Oldest(); ok {
		t.Fatal("Oldest on empty view returned ok")
	}
	if _, ok := v.RandomEntry(rand.New(rand.NewSource(1))); ok {
		t.Fatal("RandomEntry on empty view returned ok")
	}
}

func TestRandomEntriesDistinctAndExcluding(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	v := New(10)
	for i := 1; i <= 10; i++ {
		v.Add(Entry{Node: ident.ID(i)})
	}
	got := v.RandomEntries(5, rng, 3, 7)
	if len(got) != 5 {
		t.Fatalf("len = %d, want 5", len(got))
	}
	seen := map[ident.ID]bool{}
	for _, e := range got {
		if e.Node == 3 || e.Node == 7 {
			t.Fatalf("excluded node %v returned", e.Node)
		}
		if seen[e.Node] {
			t.Fatalf("duplicate node %v", e.Node)
		}
		seen[e.Node] = true
	}
	// Asking for more than available returns all non-excluded.
	if got := v.RandomEntries(100, rng, 1); len(got) != 9 {
		t.Fatalf("len = %d, want 9", len(got))
	}
	if got := v.RandomEntries(0, rng); got != nil {
		t.Fatalf("RandomEntries(0) = %v, want nil", got)
	}
}

func TestEntriesIsACopy(t *testing.T) {
	v := New(2)
	v.Add(Entry{Node: 1, Age: 1})
	es := v.Entries()
	es[0].Age = 99
	if e, _ := v.Get(1); e.Age != 1 {
		t.Fatal("Entries leaked internal storage")
	}
}

func TestSortedByAge(t *testing.T) {
	v := New(3)
	v.Add(Entry{Node: 1, Age: 5})
	v.Add(Entry{Node: 2, Age: 1})
	v.Add(Entry{Node: 3, Age: 3})
	s := v.SortedByAge()
	if s[0].Node != 2 || s[1].Node != 3 || s[2].Node != 1 {
		t.Fatalf("unexpected order: %v", s)
	}
}

// Property: no sequence of operations can produce duplicates, self-violations
// of capacity, or entries the caller never supplied.
func TestViewInvariantsProperty(t *testing.T) {
	f := func(ops []uint16, capSeed uint8) bool {
		capacity := int(capSeed%16) + 1
		v := New(capacity)
		rng := rand.New(rand.NewSource(int64(capSeed)))
		for _, op := range ops {
			id := ident.ID(op%37 + 1)
			switch op % 5 {
			case 0:
				v.Add(Entry{Node: id, Age: uint32(op % 11)})
			case 1:
				v.Insert(Entry{Node: id, Age: uint32(op % 7)})
			case 2:
				v.Remove(id)
			case 3:
				v.AgeAll()
			case 4:
				v.RandomEntries(int(op%5), rng)
			}
			if v.Len() > capacity {
				return false
			}
			seen := map[ident.ID]bool{}
			for _, e := range v.Entries() {
				if e.Node == ident.Nil || seen[e.Node] {
					return false
				}
				seen[e.Node] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestStringSmoke(t *testing.T) {
	v := New(2)
	v.Add(Entry{Node: 1, Age: 2})
	if v.String() == "" {
		t.Fatal("empty String")
	}
}
