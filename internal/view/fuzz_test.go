package view

import (
	"testing"

	"ringcast/internal/ident"
)

// checkInvariants asserts the two structural invariants every gossip
// protocol relies on: a view never exceeds its capacity and never holds two
// entries for the same node.
func checkInvariants(t *testing.T, v *View) {
	t.Helper()
	if v.Len() > v.Cap() {
		t.Fatalf("view exceeded capacity: %d > %d", v.Len(), v.Cap())
	}
	seen := make(map[ident.ID]bool, v.Len())
	for i := 0; i < v.Len(); i++ {
		id := v.EntryAt(i).Node
		if seen[id] {
			t.Fatalf("duplicate ident %v in view %v", id, v)
		}
		seen[id] = true
	}
}

// FuzzViewMerge drives a view with arbitrary op sequences — batch merges of
// offered entries (the shape of a CYCLON/VICINITY payload merge: Insert per
// entry), single adds, removes and agings — over a deliberately tiny ident
// space so collisions, age ties and full-view insertions are constantly
// exercised. After every op the view must hold its invariants: never more
// than Cap entries, never a duplicate ident, and Insert must never create
// an entry it reported not inserting.
func FuzzViewMerge(f *testing.F) {
	f.Add(uint8(4), []byte{0, 1, 5, 1, 2, 9, 2, 1, 0})
	f.Add(uint8(1), []byte{0, 1, 1, 0, 1, 2, 0, 2, 1})
	f.Add(uint8(8), []byte{3, 0, 0, 1, 7, 255, 2, 7, 0, 0, 3, 3})
	f.Add(uint8(16), []byte{})
	f.Fuzz(func(t *testing.T, capacity uint8, ops []byte) {
		capa := int(capacity%16) + 1
		v := New(capa)
		for i := 0; i+3 <= len(ops); i += 3 {
			op := ops[i] % 4
			id := ident.ID(ops[i+1]%11 + 1) // small space: collisions guaranteed
			age := uint32(ops[i+2])
			switch op {
			case 0: // merge one offered entry, as payload merges do
				before := v.Len()
				had := v.Contains(id)
				changed := v.Insert(Entry{Node: id, Age: age, Addr: "a"})
				if !had && changed && v.Len() != before+1 {
					t.Fatalf("Insert reported new entry but Len went %d -> %d", before, v.Len())
				}
				if had && v.Len() != before {
					t.Fatalf("Insert of existing ident changed Len %d -> %d", before, v.Len())
				}
			case 1:
				v.Add(Entry{Node: id, Age: age})
			case 2:
				v.Remove(id)
			case 3:
				v.AgeAll()
			}
			checkInvariants(t, v)
		}
		// A final full-payload merge: offering more entries than capacity
		// must saturate, not overflow.
		for id := ident.ID(1); id <= 32; id++ {
			v.Insert(Entry{Node: id, Age: 0})
		}
		checkInvariants(t, v)
	})
}
