// Package view implements the bounded partial view of the network that every
// gossip protocol instance maintains: a small set of entries, each naming a
// neighbour together with the age of the link.
//
// Both CYCLON (r-links) and VICINITY (d-links) are built on this structure
// (paper, Section 6). A view never contains duplicates and never contains the
// owning node itself; enforcing those invariants here keeps the protocol
// implementations small.
package view

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"ringcast/internal/ident"
)

// Entry is one slot of a partial view: a link to a neighbour.
type Entry struct {
	// Node is the neighbour's identifier.
	Node ident.ID
	// Addr is the neighbour's transport address. It is empty in simulation,
	// where nodes are addressed by ID alone.
	Addr string
	// Age counts gossip cycles since the entry was created by its subject
	// node. CYCLON uses it to prefer swapping with the oldest neighbour and
	// to garbage-collect stale links under churn.
	Age uint32
}

// String renders the entry compactly for logs and test failures.
func (e Entry) String() string {
	return fmt.Sprintf("%s@%d", e.Node, e.Age)
}

// View is a bounded set of entries with unique node IDs.
// The zero View is unusable; construct with New. A View is not safe for
// concurrent use.
type View struct {
	cap     int
	entries []Entry
}

// New returns an empty view holding at most capacity entries.
// It panics if capacity is not positive: a zero-capacity view would make
// every gossip protocol silently inert, which is always a programming error.
func New(capacity int) *View {
	if capacity <= 0 {
		panic(fmt.Sprintf("view: capacity must be positive, got %d", capacity))
	}
	return &View{cap: capacity, entries: make([]Entry, 0, capacity)}
}

// Len returns the number of entries currently held.
func (v *View) Len() int { return len(v.entries) }

// Cap returns the maximum number of entries the view can hold.
func (v *View) Cap() int { return v.cap }

// Full reports whether the view is at capacity.
func (v *View) Full() bool { return len(v.entries) >= v.cap }

// Contains reports whether the view holds an entry for id.
func (v *View) Contains(id ident.ID) bool {
	return v.indexOf(id) >= 0
}

// Get returns the entry for id, if present.
func (v *View) Get(id ident.ID) (Entry, bool) {
	if i := v.indexOf(id); i >= 0 {
		return v.entries[i], true
	}
	return Entry{}, false
}

func (v *View) indexOf(id ident.ID) int {
	for i := range v.entries {
		if v.entries[i].Node == id {
			return i
		}
	}
	return -1
}

// Add inserts e if the view has room and holds no entry for the same node.
// It reports whether the entry was inserted.
func (v *View) Add(e Entry) bool {
	if v.Full() || v.Contains(e.Node) {
		return false
	}
	v.entries = append(v.entries, e)
	return true
}

// Insert adds e, updating an existing entry for the same node to the younger
// age if one exists. A non-empty Addr refreshes the stored address whenever
// the offered entry is at least as fresh (age ties included): a node that
// restarts on a new address re-announces itself at age 0, which must replace
// the stale address instead of lingering until eviction. Entries that are
// strictly older than what the view holds never overwrite the address — a
// pre-restart entry still circulating through gossip must not resurrect a
// dead address. Insert reports whether the view changed. When the view is
// full and the node is absent, Insert fails like Add.
func (v *View) Insert(e Entry) bool {
	if i := v.indexOf(e.Node); i >= 0 {
		changed := false
		if e.Addr != "" && e.Age <= v.entries[i].Age && v.entries[i].Addr != e.Addr {
			v.entries[i].Addr = e.Addr
			changed = true
		}
		if e.Age < v.entries[i].Age {
			v.entries[i].Age = e.Age
			changed = true
		}
		return changed
	}
	return v.Add(e)
}

// Remove deletes the entry for id, reporting whether it was present.
// Order of remaining entries is not preserved.
func (v *View) Remove(id ident.ID) bool {
	i := v.indexOf(id)
	if i < 0 {
		return false
	}
	last := len(v.entries) - 1
	v.entries[i] = v.entries[last]
	v.entries = v.entries[:last]
	return true
}

// SetCap resizes the view's capacity in place, for live re-tuning.
// Growing simply leaves headroom; shrinking below the current length
// evicts the oldest entries first — the same candidates CYCLON's
// replacement policy would cycle out next — until the view fits. Panics on
// capacity <= 0, matching New.
func (v *View) SetCap(capacity int) {
	if capacity <= 0 {
		panic("view: capacity must be positive")
	}
	v.cap = capacity
	for len(v.entries) > v.cap {
		oldest := 0
		for i := 1; i < len(v.entries); i++ {
			if v.entries[i].Age > v.entries[oldest].Age {
				oldest = i
			}
		}
		last := len(v.entries) - 1
		v.entries[oldest] = v.entries[last]
		v.entries = v.entries[:last]
	}
}

// AgeAll increments the age of every entry by one. CYCLON does this at the
// start of every shuffle the node initiates.
func (v *View) AgeAll() {
	for i := range v.entries {
		v.entries[i].Age++
	}
}

// Oldest returns the entry with the highest age. Ties resolve to the first
// encountered, which is arbitrary but deterministic for a given history.
func (v *View) Oldest() (Entry, bool) {
	if len(v.entries) == 0 {
		return Entry{}, false
	}
	best := 0
	for i := 1; i < len(v.entries); i++ {
		if v.entries[i].Age > v.entries[best].Age {
			best = i
		}
	}
	return v.entries[best], true
}

// RandomEntry returns a uniformly random entry.
func (v *View) RandomEntry(rng *rand.Rand) (Entry, bool) {
	if len(v.entries) == 0 {
		return Entry{}, false
	}
	return v.entries[rng.Intn(len(v.entries))], true
}

// RandomEntries returns up to n distinct entries sampled uniformly without
// replacement, excluding any entry whose node appears in exclude.
func (v *View) RandomEntries(n int, rng *rand.Rand, exclude ...ident.ID) []Entry {
	if n <= 0 {
		return nil
	}
	pool := make([]Entry, 0, len(v.entries))
outer:
	for _, e := range v.entries {
		for _, x := range exclude {
			if e.Node == x {
				continue outer
			}
		}
		pool = append(pool, e)
	}
	if n > len(pool) {
		n = len(pool)
	}
	// Partial Fisher-Yates: shuffle only the prefix we take.
	for i := 0; i < n; i++ {
		j := i + rng.Intn(len(pool)-i)
		pool[i], pool[j] = pool[j], pool[i]
	}
	return pool[:n:n]
}

// Entries returns a copy of the view's entries. Mutating the result does not
// affect the view. Hot paths that can guarantee the view is not mutated
// while they read should use All instead.
func (v *View) Entries() []Entry {
	out := make([]Entry, len(v.entries))
	copy(out, v.entries)
	return out
}

// All returns the view's entries without copying. The returned slice is
// read-only and is invalidated by ANY mutating call (Add, Insert, Remove,
// AgeAll, Reset): callers must not retain it across mutations, and must copy
// (AppendTo) when they need a stable snapshot. This is the zero-copy
// accessor the simulator's exchange steps are built on.
func (v *View) All() []Entry { return v.entries }

// EntryAt returns the i-th entry in internal order, 0 <= i < Len().
func (v *View) EntryAt(i int) Entry { return v.entries[i] }

// AppendTo appends a copy of the entries to dst and returns the extended
// slice — the allocation-free counterpart of Entries for callers with a
// reusable buffer.
func (v *View) AppendTo(dst []Entry) []Entry {
	return append(dst, v.entries...)
}

// Reset empties the view in place, retaining capacity.
func (v *View) Reset() { v.entries = v.entries[:0] }

// IDs returns the node IDs of all entries, in internal order.
func (v *View) IDs() []ident.ID {
	out := make([]ident.ID, len(v.entries))
	for i := range v.entries {
		out[i] = v.entries[i].Node
	}
	return out
}

// SortedByAge returns a copy of the entries ordered from youngest to oldest.
func (v *View) SortedByAge() []Entry {
	out := v.Entries()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Age < out[j].Age })
	return out
}

// String renders the view for diagnostics.
func (v *View) String() string {
	parts := make([]string, len(v.entries))
	for i, e := range v.entries {
		parts[i] = e.String()
	}
	return "[" + strings.Join(parts, " ") + "]"
}
