// Package analysis measures structural properties of gossip overlays. The
// paper leans on CYCLON producing "overlays that strongly resemble random
// graphs" (Section 6) — this package quantifies that resemblance: in-degree
// distribution, clustering coefficient, and average path length, with the
// corresponding Erdős–Rényi-style expectations for comparison.
package analysis

import (
	"fmt"
	"math"
	"math/rand"

	"ringcast/internal/graph"
)

// OverlayStats summarizes the structure of a directed overlay.
type OverlayStats struct {
	// N is the number of nodes considered.
	N int
	// MeanOutDegree and MeanInDegree are the average degrees; for a
	// peer-sampling overlay with full views both equal the view length.
	MeanOutDegree, MeanInDegree float64
	// InDegreeStd is the standard deviation of the in-degree — low for
	// random-graph-like overlays, enormous for star-like ones.
	InDegreeStd float64
	// MaxInDegree is the hottest node's in-degree.
	MaxInDegree int
	// Clustering is the mean local clustering coefficient (directed edges
	// treated as undirected). Random graphs have ~degree/N; structured
	// overlays have much more.
	Clustering float64
	// AvgPathLength is the mean shortest-path length over sampled source
	// nodes (hops). Random graphs have ~ln(N)/ln(degree).
	AvgPathLength float64
	// Diameter is the maximum eccentricity among the sampled sources.
	Diameter int
	// Disconnected reports whether any sampled source failed to reach some
	// node (path metrics then cover reachable pairs only).
	Disconnected bool
}

// RandomGraphClustering is the expected clustering coefficient of an
// Erdős–Rényi digraph with the same size and mean degree: degree/N.
func RandomGraphClustering(n int, meanDegree float64) float64 {
	if n == 0 {
		return 0
	}
	return meanDegree / float64(n)
}

// RandomGraphPathLength is the textbook estimate ln(N)/ln(degree) for the
// average shortest path of a random graph.
func RandomGraphPathLength(n int, meanDegree float64) float64 {
	if n < 2 || meanDegree <= 1 {
		return math.Inf(1)
	}
	return math.Log(float64(n)) / math.Log(meanDegree)
}

// Analyze computes overlay statistics. pathSamples bounds the number of BFS
// sources used for path metrics (0 disables them; they are O(samples * E)).
func Analyze(g *graph.Directed, pathSamples int, rng *rand.Rand) (*OverlayStats, error) {
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("analysis: empty graph")
	}
	if pathSamples > 0 && rng == nil {
		return nil, fmt.Errorf("analysis: rng required for path sampling")
	}
	s := &OverlayStats{N: n}

	out := g.OutDegrees()
	in := g.InDegrees()
	sumOut, sumIn := 0, 0
	for i := 0; i < n; i++ {
		sumOut += out[i]
		sumIn += in[i]
		if in[i] > s.MaxInDegree {
			s.MaxInDegree = in[i]
		}
	}
	s.MeanOutDegree = float64(sumOut) / float64(n)
	s.MeanInDegree = float64(sumIn) / float64(n)
	varIn := 0.0
	for i := 0; i < n; i++ {
		d := float64(in[i]) - s.MeanInDegree
		varIn += d * d
	}
	s.InDegreeStd = math.Sqrt(varIn / float64(n))

	s.Clustering = clustering(g)

	if pathSamples > 0 {
		s.AvgPathLength, s.Diameter, s.Disconnected = pathMetrics(g, pathSamples, rng)
	}
	return s, nil
}

// clustering computes the mean local clustering coefficient with directed
// edges collapsed to undirected ones.
func clustering(g *graph.Directed) float64 {
	n := g.N()
	// Build undirected neighbour sets.
	neigh := make([]map[int]struct{}, n)
	for i := range neigh {
		neigh[i] = make(map[int]struct{})
	}
	for u := 0; u < n; u++ {
		for _, v := range g.Out(u) {
			if u == v {
				continue
			}
			neigh[u][v] = struct{}{}
			neigh[v][u] = struct{}{}
		}
	}
	total := 0.0
	counted := 0
	for u := 0; u < n; u++ {
		k := len(neigh[u])
		if k < 2 {
			continue
		}
		counted++
		links := 0
		// Count edges among u's neighbours.
		for v := range neigh[u] {
			for w := range neigh[v] {
				if w == u || w == v {
					continue
				}
				if _, ok := neigh[u][w]; ok {
					links++
				}
			}
		}
		// Each neighbour pair counted twice (v->w and w->v).
		total += float64(links) / float64(k*(k-1))
	}
	if counted == 0 {
		return 0
	}
	return total / float64(counted)
}

// pathMetrics runs BFS from sampled sources over directed edges.
func pathMetrics(g *graph.Directed, samples int, rng *rand.Rand) (avg float64, diameter int, disconnected bool) {
	n := g.N()
	if samples > n {
		samples = n
	}
	perm := rng.Perm(n)[:samples]
	totalDist, pairs := 0, 0
	for _, src := range perm {
		dist := bfs(g, src)
		for v, d := range dist {
			if v == src {
				continue
			}
			if d < 0 {
				disconnected = true
				continue
			}
			totalDist += d
			pairs++
			if d > diameter {
				diameter = d
			}
		}
	}
	if pairs == 0 {
		return 0, 0, disconnected
	}
	return float64(totalDist) / float64(pairs), diameter, disconnected
}

// bfs returns directed-hop distances from src (-1 = unreachable).
func bfs(g *graph.Directed, src int) []int {
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Out(u) {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}
