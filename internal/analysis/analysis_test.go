package analysis

import (
	"math"
	"math/rand"
	"testing"

	"ringcast/internal/cyclon"
	"ringcast/internal/dissem"
	"ringcast/internal/graph"
	"ringcast/internal/ident"
	"ringcast/internal/overlay"
	"ringcast/internal/sim"
	"ringcast/internal/vicinity"
)

func TestAnalyzeValidation(t *testing.T) {
	if _, err := Analyze(graph.NewDirected(0), 0, nil); err == nil {
		t.Error("empty graph accepted")
	}
	if _, err := Analyze(graph.NewDirected(3), 2, nil); err == nil {
		t.Error("nil rng with sampling accepted")
	}
}

func TestAnalyzeRing(t *testing.T) {
	g := overlay.Ring(100)
	s, err := Analyze(g, 10, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if s.MeanOutDegree != 2 || s.MeanInDegree != 2 {
		t.Fatalf("ring degrees = %v/%v, want 2/2", s.MeanOutDegree, s.MeanInDegree)
	}
	if s.InDegreeStd != 0 {
		t.Fatalf("ring in-degree std = %v, want 0", s.InDegreeStd)
	}
	// Ring: no triangles.
	if s.Clustering != 0 {
		t.Fatalf("ring clustering = %v, want 0", s.Clustering)
	}
	// Ring paths are long: ~N/4 on average, diameter N/2.
	if s.AvgPathLength < 20 || s.Diameter != 50 {
		t.Fatalf("ring paths = %.1f avg, %d diameter", s.AvgPathLength, s.Diameter)
	}
	if s.Disconnected {
		t.Fatal("ring reported disconnected")
	}
}

func TestAnalyzeCliqueClustering(t *testing.T) {
	g := overlay.Clique(12)
	s, err := Analyze(g, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Clustering-1) > 1e-9 {
		t.Fatalf("clique clustering = %v, want 1", s.Clustering)
	}
	if s.AvgPathLength != 0 {
		t.Fatal("path metrics computed despite samples=0")
	}
}

func TestAnalyzeStarConcentration(t *testing.T) {
	g := overlay.Star(50)
	s, err := Analyze(g, 5, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if s.MaxInDegree != 49 {
		t.Fatalf("star hub in-degree = %d, want 49", s.MaxInDegree)
	}
	if s.InDegreeStd < 5 {
		t.Fatalf("star in-degree std = %v, want large", s.InDegreeStd)
	}
}

// The paper's Section 6 claim: a converged CYCLON overlay strongly
// resembles a random graph — balanced in-degrees, near-ER clustering,
// logarithmic path lengths.
func TestCyclonOverlayResemblesRandomGraph(t *testing.T) {
	cfg := sim.Config{
		N:           500,
		Cyclon:      cyclon.Config{ViewSize: 10, ShuffleLen: 5},
		Vicinity:    vicinity.Config{ViewSize: 8, GossipLen: 8, Balanced: true, MaxAge: 20},
		UseVicinity: false,
		Seed:        7,
	}
	nw := sim.MustNew(cfg)
	nw.RunCycles(150)

	// Project the CYCLON views onto a directed graph.
	o := dissem.Snapshot(nw)
	g := graph.NewDirected(o.N())
	index := map[ident.ID]int{}
	for i, id := range o.IDs() {
		index[id] = i
	}
	for i := 0; i < o.N(); i++ {
		for _, tgt := range o.Links(i).R {
			if j, ok := index[tgt]; ok {
				g.AddEdge(i, j)
			}
		}
	}
	s, err := Analyze(g, 30, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if s.MeanOutDegree < 9.5 {
		t.Fatalf("views not full: mean out-degree %v", s.MeanOutDegree)
	}
	// In-degree balanced around the view size (CYCLON's signature property).
	if s.InDegreeStd > 0.6*s.MeanInDegree {
		t.Errorf("in-degree too dispersed: std %v vs mean %v", s.InDegreeStd, s.MeanInDegree)
	}
	// Clustering within a small factor of the ER expectation.
	er := RandomGraphClustering(s.N, s.MeanOutDegree)
	if s.Clustering > 5*er {
		t.Errorf("clustering %v far above random-graph %v", s.Clustering, er)
	}
	// Path length close to ln(N)/ln(degree).
	want := RandomGraphPathLength(s.N, s.MeanOutDegree)
	if s.AvgPathLength > 1.5*want {
		t.Errorf("path length %v far above random-graph %v", s.AvgPathLength, want)
	}
	if s.Disconnected {
		t.Error("converged CYCLON overlay disconnected")
	}
}

func TestRandomGraphFormulas(t *testing.T) {
	if RandomGraphClustering(0, 5) != 0 {
		t.Error("zero-node clustering should be 0")
	}
	if got := RandomGraphClustering(100, 10); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("ER clustering = %v, want 0.1", got)
	}
	if !math.IsInf(RandomGraphPathLength(1, 5), 1) {
		t.Error("degenerate path length should be +inf")
	}
	if !math.IsInf(RandomGraphPathLength(100, 1), 1) {
		t.Error("degree <= 1 path length should be +inf")
	}
	got := RandomGraphPathLength(1000, 10)
	if math.Abs(got-3) > 0.01 {
		t.Errorf("ln(1000)/ln(10) = %v, want 3", got)
	}
}
