// Package plot renders experiment series as ASCII charts, so that the
// bench harness can show the *shape* of each paper figure (exponential
// miss-ratio decay, progress curves, log-log lifetime distributions)
// directly in a terminal.
//
// Rendering is a pure function of the input series — fixed scales, fixed
// glyph ramps, no randomness — so chart output is byte-stable and safe to
// assert on in tests, exactly like the tables it accompanies.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named line of a chart.
type Series struct {
	Name   string
	Values []float64
}

// barWidth is the default width of value bars in characters.
const defaultWidth = 50

// Bars renders one horizontal bar per (label, value), scaled linearly to
// the maximum value.
func Bars(labels []string, values []float64, width int) string {
	if width <= 0 {
		width = defaultWidth
	}
	if len(labels) != len(values) {
		return fmt.Sprintf("plot: %d labels for %d values\n", len(labels), len(values))
	}
	maxVal := 0.0
	for _, v := range values {
		if v > maxVal {
			maxVal = v
		}
	}
	labelW := 0
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	var sb strings.Builder
	for i, v := range values {
		n := 0
		if maxVal > 0 {
			n = int(math.Round(v / maxVal * float64(width)))
		}
		if v > 0 && n == 0 {
			n = 1 // visible hint for tiny non-zero values
		}
		fmt.Fprintf(&sb, "%-*s |%s %g\n", labelW, labels[i], strings.Repeat("#", n), v)
	}
	return sb.String()
}

// LogBars renders bars on a log10 scale, for series spanning orders of
// magnitude (the paper plots miss ratios logarithmically). Zero values get
// an explicit "0" marker; the floor parameter is the smallest
// distinguishable value (e.g. 1e-4 for percent scales).
func LogBars(labels []string, values []float64, width int, floor float64) string {
	if width <= 0 {
		width = defaultWidth
	}
	if floor <= 0 {
		floor = 1e-6
	}
	if len(labels) != len(values) {
		return fmt.Sprintf("plot: %d labels for %d values\n", len(labels), len(values))
	}
	maxVal := floor
	for _, v := range values {
		if v > maxVal {
			maxVal = v
		}
	}
	span := math.Log10(maxVal) - math.Log10(floor)
	if span <= 0 {
		span = 1
	}
	labelW := 0
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	var sb strings.Builder
	for i, v := range values {
		switch {
		case v <= 0:
			fmt.Fprintf(&sb, "%-*s |  0\n", labelW, labels[i])
		default:
			clamped := v
			if clamped < floor {
				clamped = floor
			}
			n := int(math.Round((math.Log10(clamped) - math.Log10(floor)) / span * float64(width)))
			if n < 1 {
				n = 1
			}
			fmt.Fprintf(&sb, "%-*s |%s %.4g\n", labelW, labels[i], strings.Repeat("#", n), v)
		}
	}
	return sb.String()
}

// Curves renders multiple series as rows of an x/value table with a
// miniature sparkline per series — enough to eyeball crossovers in
// progress curves. x labels are the indices.
func Curves(series []Series, height int) string {
	if height <= 0 {
		height = 8
	}
	var sb strings.Builder
	for _, s := range series {
		sb.WriteString(s.Name + "\n")
		sb.WriteString(sparkline(s.Values, height))
	}
	return sb.String()
}

// sparkRunes are vertical resolution steps for sparklines.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders a one-line sparkline of the series (linear scale).
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	minV, maxV := values[0], values[0]
	for _, v := range values {
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	span := maxV - minV
	var sb strings.Builder
	for _, v := range values {
		idx := 0
		if span > 0 {
			idx = int((v - minV) / span * float64(len(sparkRunes)-1))
		}
		sb.WriteRune(sparkRunes[idx])
	}
	return sb.String()
}

// sparkline renders a multi-row ASCII area chart.
func sparkline(values []float64, height int) string {
	if len(values) == 0 {
		return "(empty)\n"
	}
	maxV := values[0]
	for _, v := range values {
		if v > maxV {
			maxV = v
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	rows := make([][]byte, height)
	for r := range rows {
		rows[r] = make([]byte, len(values))
		for c := range rows[r] {
			rows[r][c] = ' '
		}
	}
	for c, v := range values {
		h := int(math.Round(v / maxV * float64(height)))
		for r := 0; r < h && r < height; r++ {
			rows[height-1-r][c] = '#'
		}
	}
	var sb strings.Builder
	for r := 0; r < height; r++ {
		fmt.Fprintf(&sb, "  |%s\n", string(rows[r]))
	}
	fmt.Fprintf(&sb, "  +%s (max %.4g)\n", strings.Repeat("-", len(values)), maxV)
	return sb.String()
}
