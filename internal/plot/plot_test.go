package plot

import (
	"strings"
	"testing"
)

func TestBarsBasic(t *testing.T) {
	out := Bars([]string{"a", "bb"}, []float64{1, 2}, 10)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.Contains(lines[1], strings.Repeat("#", 10)) {
		t.Fatalf("max bar not full width: %q", lines[1])
	}
	if strings.Count(lines[0], "#") != 5 {
		t.Fatalf("half bar = %q", lines[0])
	}
}

func TestBarsTinyNonZeroVisible(t *testing.T) {
	out := Bars([]string{"big", "tiny"}, []float64{1000, 0.0001}, 20)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if !strings.Contains(lines[1], "#") {
		t.Fatalf("tiny non-zero value invisible: %q", lines[1])
	}
}

func TestBarsMismatch(t *testing.T) {
	if out := Bars([]string{"a"}, []float64{1, 2}, 10); !strings.Contains(out, "plot:") {
		t.Fatal("mismatch not reported")
	}
}

func TestBarsAllZero(t *testing.T) {
	out := Bars([]string{"a"}, []float64{0}, 10)
	if strings.Contains(out, "#") {
		t.Fatalf("zero value drew a bar: %q", out)
	}
}

func TestLogBarsSpansOrders(t *testing.T) {
	out := LogBars([]string{"hi", "mid", "lo", "zero"},
		[]float64{10, 0.1, 0.001, 0}, 30, 1e-4)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	count := func(s string) int { return strings.Count(s, "#") }
	if !(count(lines[0]) > count(lines[1]) && count(lines[1]) > count(lines[2])) {
		t.Fatalf("log bars not monotone:\n%s", out)
	}
	if count(lines[2]) == 0 {
		t.Fatal("small value invisible on log scale")
	}
	if !strings.Contains(lines[3], "0") || count(lines[3]) != 0 {
		t.Fatalf("zero not marked: %q", lines[3])
	}
}

func TestLogBarsDefaults(t *testing.T) {
	out := LogBars([]string{"a"}, []float64{1}, 0, 0)
	if out == "" {
		t.Fatal("empty output with defaults")
	}
	if out := LogBars([]string{"a"}, []float64{1, 2}, 10, 1); !strings.Contains(out, "plot:") {
		t.Fatal("mismatch not reported")
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3})
	if len([]rune(s)) != 4 {
		t.Fatalf("sparkline runes = %d", len([]rune(s)))
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[3] != '█' {
		t.Fatalf("sparkline ends wrong: %q", s)
	}
	if Sparkline(nil) != "" {
		t.Fatal("empty input should render empty")
	}
	// Constant series: all minimum rune, no panic.
	if s := Sparkline([]float64{5, 5}); len([]rune(s)) != 2 {
		t.Fatal("constant series broken")
	}
}

func TestCurves(t *testing.T) {
	out := Curves([]Series{
		{Name: "RandCast", Values: []float64{100, 50, 10, 1}},
		{Name: "RingCast", Values: []float64{100, 40, 5, 0}},
	}, 4)
	if !strings.Contains(out, "RandCast") || !strings.Contains(out, "RingCast") {
		t.Fatal("series names missing")
	}
	if !strings.Contains(out, "#") {
		t.Fatal("no chart content")
	}
	if !strings.Contains(Curves([]Series{{Name: "e"}}, 0), "(empty)") {
		t.Fatal("empty series not handled")
	}
}
