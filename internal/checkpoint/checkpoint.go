// Package checkpoint persists frozen converged overlays — the output of the
// parallel bootstrap (sim.BuildConverged) — so repeated scale sweeps skip
// the mixing cycles entirely. The paper's Section 7.1 freezing argument is
// what makes reuse sound: dissemination over a frozen overlay is
// insensitive to how the overlay got there, so a cached arena is
// interchangeable with a freshly built one.
//
// A checkpoint is valid only for the exact deterministic build that
// produced it, so every file carries a Fingerprint (population, master
// seed, mixing cycles, protocol view lengths, format version) and Load
// rejects any mismatch with ErrStale — callers rebuild, never silently
// reuse. Dissemination fanout is deliberately NOT part of the fingerprint:
// the frozen overlay is a pure function of the bootstrap parameters, and
// fanout only shapes the sweep run on top of it, so one checkpoint serves
// every fanout.
//
// The encoding is canonical: minimal-width varints, links delta-encoded
// from the node's own position (a converged ring's d-links encode as ±1),
// an IEEE CRC-32 trailer, and no trailing bytes. Decode accepts exactly
// the bytes Encode produces — any accepted input re-encodes to itself,
// the invariant the fuzz target leans on.
//
//ringcast:deterministic
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"ringcast/internal/core"
)

// magic identifies a checkpoint file ("RCKP": RingCast CheckPoint).
var magic = [4]byte{'R', 'C', 'K', 'P'}

// FormatVersion is the current encoding version. Decode rejects any other
// value, so a format change can never be silently misread as stale data.
const FormatVersion = 1

// Sentinel errors, matched by callers via errors.Is.
var (
	// ErrStale marks a structurally valid checkpoint whose fingerprint does
	// not match the requested build — the caller must rebuild.
	ErrStale = errors.New("checkpoint: stale fingerprint")
	// ErrCorrupt marks bytes that are not a valid checkpoint (bad magic,
	// truncation, CRC mismatch, non-canonical or out-of-range encoding).
	ErrCorrupt = errors.New("checkpoint: corrupt data")
)

// Fingerprint pins the deterministic build a checkpoint captures. Two
// builds with equal fingerprints produce byte-identical arenas (the
// BuildConverged determinism contract), so fingerprint equality is
// sufficient for reuse.
type Fingerprint struct {
	// N is the node population.
	N int
	// Seed is the master seed the build derived all randomness from.
	Seed int64
	// Cycles is the number of mixing cycles run after converged seeding.
	Cycles int
	// CyclonView and CyclonShuffle are the CYCLON protocol parameters.
	CyclonView, CyclonShuffle int
	// VicinityView and VicinityGossip are the VICINITY protocol parameters.
	VicinityView, VicinityGossip int
}

// String renders the fingerprint compactly for error messages and logs.
func (f Fingerprint) String() string {
	return fmt.Sprintf("n=%d seed=%d cycles=%d cyc=%d/%d vic=%d/%d",
		f.N, f.Seed, f.Cycles, f.CyclonView, f.CyclonShuffle, f.VicinityView, f.VicinityGossip)
}

// uvarintLen returns the canonical (minimal) encoded length of v.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// decoder reads canonical varints with strict bounds checking.
type decoder struct {
	buf []byte
	off int
}

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: truncated varint at offset %d", ErrCorrupt, d.off)
	}
	if n != uvarintLen(v) {
		return 0, fmt.Errorf("%w: non-canonical varint at offset %d", ErrCorrupt, d.off)
	}
	d.off += n
	return v, nil
}

func (d *decoder) varint() (int64, error) {
	u, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	return zigzagDecode(u), nil
}

func zigzagEncode(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }
func zigzagDecode(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// maxNodes bounds the population a checkpoint may claim; matches the arena
// offset space (int32 link offsets).
const maxNodes = 1 << 31

// Encode serializes the fingerprint and arena into the canonical checkpoint
// byte form.
func Encode(fp Fingerprint, arena *core.PosArena) []byte {
	n := arena.N()
	// Rough pre-size: header + 2 length varints and ~5 bytes per link.
	out := make([]byte, 0, 64+2*n+5*arena.LinkCount())
	out = append(out, magic[:]...)
	out = binary.AppendUvarint(out, FormatVersion)
	out = binary.AppendUvarint(out, uint64(fp.N))
	out = binary.AppendUvarint(out, zigzagEncode(fp.Seed))
	out = binary.AppendUvarint(out, uint64(fp.Cycles))
	out = binary.AppendUvarint(out, uint64(fp.CyclonView))
	out = binary.AppendUvarint(out, uint64(fp.CyclonShuffle))
	out = binary.AppendUvarint(out, uint64(fp.VicinityView))
	out = binary.AppendUvarint(out, uint64(fp.VicinityGossip))
	out = binary.AppendUvarint(out, uint64(n))
	for i := 0; i < n; i++ {
		l := arena.Links(i)
		out = binary.AppendUvarint(out, uint64(len(l.R)))
		out = binary.AppendUvarint(out, uint64(len(l.D)))
	}
	for i := 0; i < n; i++ {
		l := arena.Links(i)
		prev := int64(i)
		for _, v := range l.R {
			out = binary.AppendUvarint(out, zigzagEncode(int64(v)-prev))
			prev = int64(v)
		}
		prev = int64(i)
		for _, v := range l.D {
			out = binary.AppendUvarint(out, zigzagEncode(int64(v)-prev))
			prev = int64(v)
		}
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(out))
	return append(out, crc[:]...)
}

// Decode parses checkpoint bytes, validating structure, canonical encoding,
// link ranges and the CRC trailer. It returns ErrCorrupt-wrapped errors for
// any malformed input; it never panics on arbitrary bytes.
func Decode(data []byte) (Fingerprint, *core.PosArena, error) {
	var fp Fingerprint
	if len(data) < len(magic)+4 {
		return fp, nil, fmt.Errorf("%w: %d bytes is shorter than any checkpoint", ErrCorrupt, len(data))
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if want := crc32.ChecksumIEEE(body); binary.LittleEndian.Uint32(trailer) != want {
		return fp, nil, fmt.Errorf("%w: CRC mismatch", ErrCorrupt)
	}
	if [4]byte(body[:4]) != magic {
		return fp, nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	d := &decoder{buf: body, off: 4}
	version, err := d.uvarint()
	if err != nil {
		return fp, nil, err
	}
	if version != FormatVersion {
		return fp, nil, fmt.Errorf("%w: format version %d, this build reads %d", ErrCorrupt, version, FormatVersion)
	}
	fields := []*int{&fp.N, nil, &fp.Cycles, &fp.CyclonView, &fp.CyclonShuffle, &fp.VicinityView, &fp.VicinityGossip}
	for _, dst := range fields {
		if dst == nil {
			s, err := d.varint()
			if err != nil {
				return fp, nil, err
			}
			fp.Seed = s
			continue
		}
		v, err := d.uvarint()
		if err != nil {
			return fp, nil, err
		}
		if v > maxNodes {
			return fp, nil, fmt.Errorf("%w: fingerprint field %d out of range", ErrCorrupt, v)
		}
		*dst = int(v)
	}
	nu, err := d.uvarint()
	if err != nil {
		return fp, nil, err
	}
	n := int(nu)
	// Every node needs at least two length varints, so an honest body is at
	// least 2n more bytes — reject before allocating for a forged count.
	if nu > maxNodes || 2*n > len(body)-d.off {
		return fp, nil, fmt.Errorf("%w: node count %d exceeds remaining %d bytes", ErrCorrupt, n, len(body)-d.off)
	}
	rLens := make([]int, n)
	dLens := make([]int, n)
	total := 0
	for i := 0; i < n; i++ {
		r, err := d.uvarint()
		if err != nil {
			return fp, nil, err
		}
		dd, err := d.uvarint()
		if err != nil {
			return fp, nil, err
		}
		if r > maxNodes || dd > maxNodes {
			return fp, nil, fmt.Errorf("%w: node %d link counts out of range", ErrCorrupt, i)
		}
		rLens[i], dLens[i] = int(r), int(dd)
		total += int(r) + int(dd)
		// Each link costs at least one encoded byte.
		if total > len(body)-d.off {
			return fp, nil, fmt.Errorf("%w: link count %d exceeds remaining %d bytes", ErrCorrupt, total, len(body)-d.off)
		}
	}
	arena := core.NewPosArena(rLens, dLens)
	for i := 0; i < n; i++ {
		if err := d.links(arena.RSlot(i), i, n); err != nil {
			return fp, nil, err
		}
		if err := d.links(arena.DSlot(i), i, n); err != nil {
			return fp, nil, err
		}
	}
	if d.off != len(body) {
		return fp, nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(body)-d.off)
	}
	return fp, arena, nil
}

// links decodes one node's delta-encoded link block into dst. Values must
// be valid positions in [0, n) or NilPos.
func (d *decoder) links(dst []int32, node, n int) error {
	prev := int64(node)
	for k := range dst {
		delta, err := d.varint()
		if err != nil {
			return err
		}
		v := prev + delta
		if v != int64(core.NilPos) && (v < 0 || v >= int64(n)) {
			return fmt.Errorf("%w: node %d link %d resolves to %d, outside [0,%d)", ErrCorrupt, node, k, v, n)
		}
		dst[k] = int32(v)
		prev = v
	}
	return nil
}

// Save atomically writes the checkpoint for fp to path (temp file + rename,
// so a crash never leaves a torn file that a later Load could half-read).
func Save(path string, fp Fingerprint, arena *core.PosArena) error {
	data := Encode(fp, arena)
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("checkpoint: create dir: %w", err)
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("checkpoint: temp file: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("checkpoint: write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("checkpoint: close: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("checkpoint: rename: %w", err)
	}
	return nil
}

// Load reads the checkpoint at path and returns its arena, but only when
// the stored fingerprint matches want exactly; a mismatch returns ErrStale
// with both fingerprints spelled out, and malformed bytes return
// ErrCorrupt. Callers treat any error as "rebuild" — reuse is never
// silent.
func Load(path string, want Fingerprint) (*core.PosArena, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	got, arena, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if got != want {
		return nil, fmt.Errorf("%s: %w: file has [%s], build wants [%s]", path, ErrStale, got, want)
	}
	return arena, nil
}
