package checkpoint

import (
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"ringcast/internal/core"
	"ringcast/internal/sim"
)

// buildSmall builds a real converged overlay to checkpoint.
func buildSmall(t *testing.T, n int, seed int64) (Fingerprint, *core.PosArena) {
	t.Helper()
	cfg := sim.DefaultMixConfig(n)
	cfg.Seed = seed
	cfg.Cycles = 8
	res, err := sim.BuildConverged(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fp := Fingerprint{
		N: n, Seed: seed, Cycles: cfg.Cycles,
		CyclonView: cfg.Cyclon.ViewSize, CyclonShuffle: cfg.Cyclon.ShuffleLen,
		VicinityView: cfg.Vicinity.ViewSize, VicinityGossip: cfg.Vicinity.GossipLen,
	}
	return fp, res.Arena
}

func arenasEqual(a, b *core.PosArena) bool {
	if a.N() != b.N() || a.LinkCount() != b.LinkCount() {
		return false
	}
	for i := 0; i < a.N(); i++ {
		la, lb := a.Links(i), b.Links(i)
		if len(la.R) != len(lb.R) || len(la.D) != len(lb.D) {
			return false
		}
		for k := range la.R {
			if la.R[k] != lb.R[k] {
				return false
			}
		}
		for k := range la.D {
			if la.D[k] != lb.D[k] {
				return false
			}
		}
	}
	return true
}

// TestSaveLoadRoundTrip: save then load yields an arena byte-equal to the
// freshly built one, under the exact fingerprint.
func TestSaveLoadRoundTrip(t *testing.T) {
	fp, arena := buildSmall(t, 200, 5)
	path := filepath.Join(t.TempDir(), "sub", "scale.rckp")
	if err := Save(path, fp, arena); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path, fp)
	if err != nil {
		t.Fatal(err)
	}
	if !arenasEqual(arena, got) {
		t.Fatal("loaded arena differs from the one saved")
	}
}

// TestEncodeDecodeCanonical: decoding Encode's output and re-encoding it
// reproduces the same bytes — the canonical-form invariant.
func TestEncodeDecodeCanonical(t *testing.T) {
	fp, arena := buildSmall(t, 120, 3)
	data := Encode(fp, arena)
	gotFP, gotArena, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if gotFP != fp {
		t.Fatalf("fingerprint round-trip: got %+v want %+v", gotFP, fp)
	}
	again := Encode(gotFP, gotArena)
	if string(again) != string(data) {
		t.Fatal("re-encode is not byte-identical")
	}
}

// TestLoadRejectsStaleFingerprint: every fingerprint field mismatch must
// yield ErrStale — never a silent reuse.
func TestLoadRejectsStaleFingerprint(t *testing.T) {
	fp, arena := buildSmall(t, 100, 5)
	path := filepath.Join(t.TempDir(), "scale.rckp")
	if err := Save(path, fp, arena); err != nil {
		t.Fatal(err)
	}
	mutations := map[string]func(*Fingerprint){
		"N":              func(f *Fingerprint) { f.N++ },
		"Seed":           func(f *Fingerprint) { f.Seed++ },
		"Cycles":         func(f *Fingerprint) { f.Cycles++ },
		"CyclonView":     func(f *Fingerprint) { f.CyclonView++ },
		"CyclonShuffle":  func(f *Fingerprint) { f.CyclonShuffle++ },
		"VicinityView":   func(f *Fingerprint) { f.VicinityView++ },
		"VicinityGossip": func(f *Fingerprint) { f.VicinityGossip++ },
	}
	for field, mutate := range mutations {
		want := fp
		mutate(&want)
		_, err := Load(path, want)
		if !errors.Is(err, ErrStale) {
			t.Errorf("mismatched %s: got %v, want ErrStale", field, err)
		}
	}
}

// TestLoadRejectsWrongVersion: a bumped format version is ErrCorrupt (the
// decoder refuses the file outright rather than misreading it).
func TestLoadRejectsWrongVersion(t *testing.T) {
	fp, arena := buildSmall(t, 50, 2)
	data := Encode(fp, arena)
	// The version varint sits immediately after the 4-byte magic;
	// FormatVersion 1 encodes as a single byte.
	data[4] = FormatVersion + 1
	fixCRC(data)
	_, _, err := Decode(data)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt", err)
	}
}

// fixCRC recomputes the trailer after a test mutates the body.
func fixCRC(data []byte) {
	c := crc32.ChecksumIEEE(data[:len(data)-4])
	data[len(data)-4] = byte(c)
	data[len(data)-3] = byte(c >> 8)
	data[len(data)-2] = byte(c >> 16)
	data[len(data)-1] = byte(c >> 24)
}

// TestDecodeRejectsCorruption: truncation, bit flips, trailing garbage and
// short inputs all fail with ErrCorrupt and never panic.
func TestDecodeRejectsCorruption(t *testing.T) {
	fp, arena := buildSmall(t, 80, 7)
	data := Encode(fp, arena)

	cases := map[string][]byte{
		"empty":       {},
		"short":       data[:6],
		"truncated":   data[:len(data)-20],
		"no trailer":  data[:len(data)-4],
		"extra bytes": append(append([]byte{}, data...), 0xff),
	}
	flipped := append([]byte{}, data...)
	flipped[len(flipped)/2] ^= 0x40
	cases["bit flip"] = flipped
	badMagic := append([]byte{}, data...)
	badMagic[0] = 'X'
	cases["bad magic"] = badMagic

	for name, in := range cases {
		if _, _, err := Decode(in); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: got %v, want ErrCorrupt", name, err)
		}
	}
}

// TestDecodeRejectsNonCanonicalVarint: padded (non-minimal) varints are
// refused, which is what makes accepted inputs re-encode canonically.
func TestDecodeRejectsNonCanonicalVarint(t *testing.T) {
	fp, arena := buildSmall(t, 30, 1)
	data := Encode(fp, arena)
	// FormatVersion 1 is the byte 0x01 right after the magic; 0x81 0x00 is
	// the same value encoded in two bytes.
	padded := append([]byte{}, data[:4]...)
	padded = append(padded, 0x81, 0x00)
	padded = append(padded, data[5:len(data)-4]...)
	padded = append(padded, 0, 0, 0, 0)
	fixCRC(padded)
	if _, _, err := Decode(padded); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt for non-canonical varint", err)
	}
}

// TestLoadMissingFile: a missing checkpoint is an ordinary not-exist error
// (the load-or-build path treats it as a cache miss, not corruption).
func TestLoadMissingFile(t *testing.T) {
	_, err := Load(filepath.Join(t.TempDir(), "absent.rckp"), Fingerprint{})
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("got %v, want not-exist", err)
	}
}

// TestSaveAtomic: Save leaves no temp files behind and overwrites an
// existing checkpoint in place.
func TestSaveAtomic(t *testing.T) {
	fp, arena := buildSmall(t, 40, 9)
	dir := t.TempDir()
	path := filepath.Join(dir, "scale.rckp")
	if err := Save(path, fp, arena); err != nil {
		t.Fatal(err)
	}
	if err := Save(path, fp, arena); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "scale.rckp" {
		t.Fatalf("directory not clean after Save: %v", entries)
	}
	if _, err := Load(path, fp); err != nil {
		t.Fatal(err)
	}
}
