package checkpoint

import (
	"testing"

	"ringcast/internal/sim"
)

// FuzzCheckpointDecode drives arbitrary bytes through the checkpoint
// decoder: it must never panic, and any input it accepts must re-encode to
// exactly the same bytes (the canonical-form invariant — minimal varints,
// no trailing bytes, valid CRC leave exactly one byte form per overlay).
func FuzzCheckpointDecode(f *testing.F) {
	// Seed corpus: two real encoded checkpoints plus structured near-misses.
	for _, seed := range []struct {
		n   int
		s   int64
		cyc int
	}{{20, 1, 4}, {64, 9, 6}} {
		cfg := sim.DefaultMixConfig(seed.n)
		cfg.Seed = seed.s
		cfg.Cycles = seed.cyc
		res, err := sim.BuildConverged(cfg)
		if err != nil {
			f.Fatal(err)
		}
		fp := Fingerprint{
			N: seed.n, Seed: seed.s, Cycles: seed.cyc,
			CyclonView: cfg.Cyclon.ViewSize, CyclonShuffle: cfg.Cyclon.ShuffleLen,
			VicinityView: cfg.Vicinity.ViewSize, VicinityGossip: cfg.Vicinity.GossipLen,
		}
		data := Encode(fp, res.Arena)
		f.Add(data)
		f.Add(data[:len(data)/2])
		flip := append([]byte{}, data...)
		flip[len(flip)/3] ^= 0x10
		f.Add(flip)
	}
	f.Add([]byte{})
	f.Add([]byte("RCKP"))
	f.Add([]byte{'R', 'C', 'K', 'P', 1, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		fp, arena, err := Decode(data)
		if err != nil {
			return
		}
		again := Encode(fp, arena)
		if string(again) != string(data) {
			t.Fatalf("accepted input does not re-encode canonically:\n in:  %x\n out: %x", data, again)
		}
	})
}
