package cyclon

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ringcast/internal/ident"
	"ringcast/internal/view"
)

func mustNode(t *testing.T, id ident.ID) *Cyclon {
	t.Helper()
	c, err := New(id, "", Config{ViewSize: 5, ShuffleLen: 3})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(1, "", Config{ViewSize: 0, ShuffleLen: 1}); err == nil {
		t.Error("accepted zero view size")
	}
	if _, err := New(1, "", Config{ViewSize: 4, ShuffleLen: 5}); err == nil {
		t.Error("accepted shuffle length > view size")
	}
	if _, err := New(1, "", Config{ViewSize: 4, ShuffleLen: 0}); err == nil {
		t.Error("accepted zero shuffle length")
	}
	if _, err := New(ident.Nil, "", DefaultConfig()); err == nil {
		t.Error("accepted nil self ID")
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.ViewSize != 20 {
		t.Errorf("ViewSize = %d, want 20 (paper, Section 7)", cfg.ViewSize)
	}
	if err := cfg.validate(); err != nil {
		t.Error(err)
	}
}

func TestAddContactIgnoresSelfAndNil(t *testing.T) {
	c := mustNode(t, 1)
	c.AddContact(1, "")
	c.AddContact(ident.Nil, "")
	if c.View().Len() != 0 {
		t.Fatalf("view not empty: %v", c.View())
	}
	c.AddContact(2, "x")
	if !c.View().Contains(2) {
		t.Fatal("contact not added")
	}
}

func TestStartShuffleEmptyView(t *testing.T) {
	c := mustNode(t, 1)
	if _, ok := c.StartShuffle(rand.New(rand.NewSource(1))); ok {
		t.Fatal("StartShuffle on empty view succeeded")
	}
}

func TestStartShuffleRemovesOldestAndIncludesSelf(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := mustNode(t, 1)
	c.AddContact(2, "")
	c.AddContact(3, "")
	// age node 2 artificially by repeated shuffles is fiddly; instead insert
	// an old entry directly through the merge path: use AddContact then age.
	c.View().AgeAll()
	c.AddContact(4, "") // age 0, younger
	sh, ok := c.StartShuffle(rng)
	if !ok {
		t.Fatal("shuffle failed")
	}
	// After AgeAll inside StartShuffle, 2 and 3 have age 2, 4 has age 1.
	if sh.Peer.Node != 2 && sh.Peer.Node != 3 {
		t.Fatalf("peer = %v, want oldest (2 or 3)", sh.Peer.Node)
	}
	if c.View().Contains(sh.Peer.Node) {
		t.Fatal("peer entry not removed from view")
	}
	var hasSelf bool
	for _, e := range sh.Sent {
		if e.Node == 1 {
			hasSelf = true
			if e.Age != 0 {
				t.Fatalf("self entry age = %d, want 0", e.Age)
			}
		}
		if e.Node == sh.Peer.Node {
			t.Fatal("payload contains the peer itself")
		}
	}
	if !hasSelf {
		t.Fatal("payload missing fresh self entry")
	}
	if len(sh.Sent) > 3 {
		t.Fatalf("payload length %d exceeds shuffle length", len(sh.Sent))
	}
}

func TestHandleRequestMergesAndReplies(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	q := mustNode(t, 10)
	for i := 1; i <= 5; i++ {
		q.AddContact(ident.ID(i), "")
	}
	incoming := []view.Entry{{Node: 20, Age: 0}, {Node: 21, Age: 0}, {Node: 10, Age: 0}}
	reply := q.HandleRequest(incoming, rng)
	if len(reply) == 0 || len(reply) > 3 {
		t.Fatalf("reply length = %d, want 1..3", len(reply))
	}
	// Self entry (10) must never enter the view; 20 and 21 should have
	// displaced shipped entries since the view was full.
	if q.View().Contains(10) {
		t.Fatal("view contains self")
	}
	if !q.View().Contains(20) || !q.View().Contains(21) {
		t.Fatalf("incoming entries not merged: %v", q.View())
	}
	if q.View().Len() > q.View().Cap() {
		t.Fatal("view overflow")
	}
}

func TestHandleReplyPrefersReplacingSent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := mustNode(t, 1)
	for i := 2; i <= 6; i++ {
		p.AddContact(ident.ID(i), "")
	}
	sh, ok := p.StartShuffle(rng)
	if !ok {
		t.Fatal("no shuffle")
	}
	reply := []view.Entry{{Node: 30}, {Node: 31}, {Node: 32}}
	p.HandleReply(sh, reply)
	v := p.View()
	if v.Len() > v.Cap() {
		t.Fatal("view overflow")
	}
	if !v.Contains(30) {
		t.Fatalf("first reply entry not merged: %v", v)
	}
}

func TestMergeDiscardsKnownNodes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p := mustNode(t, 1)
	p.AddContact(2, "")
	before, _ := p.View().Get(2)
	p.HandleRequest([]view.Entry{{Node: 2, Age: 9}}, rng)
	after, _ := p.View().Get(2)
	if after.Age != before.Age {
		t.Fatalf("existing entry mutated: %v -> %v", before, after)
	}
}

// Property: arbitrary shuffle traffic never violates the view invariants
// (bounded size, no self, no duplicates).
func TestShuffleInvariantsProperty(t *testing.T) {
	f := func(seed int64, steps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := Config{ViewSize: 6, ShuffleLen: 4}
		a := MustNew(1, "", cfg)
		b := MustNew(2, "", cfg)
		a.AddContact(2, "")
		b.AddContact(1, "")
		for i := 0; i < int(steps%50)+1; i++ {
			// random extra contacts simulate a wider network
			a.AddContact(ident.ID(rng.Intn(40)+3), "")
			b.AddContact(ident.ID(rng.Intn(40)+3), "")
			if sh, ok := a.StartShuffle(rng); ok {
				reply := b.HandleRequest(sh.Sent, rng)
				a.HandleReply(sh, reply)
			}
			for _, n := range []*Cyclon{a, b} {
				if n.View().Len() > cfg.ViewSize {
					return false
				}
				if n.View().Contains(n.Self()) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRemove(t *testing.T) {
	c := mustNode(t, 1)
	c.AddContact(2, "")
	if !c.Remove(2) || c.Remove(2) {
		t.Fatal("Remove semantics broken")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic on bad config")
		}
	}()
	MustNew(1, "", Config{})
}
