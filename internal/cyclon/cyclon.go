// Package cyclon implements the CYCLON membership protocol (Voulgaris,
// Gavidia, van Steen, JNSM 2005), the instance of the Peer Sampling Service
// that supplies the random links (r-links) used by both RANDCAST and
// RINGCAST (paper, Section 6).
//
// Each node keeps a small partial view. Periodically it initiates an
// "enhanced shuffle" with its oldest neighbour: both sides trade a subset of
// their views, so that over time every view resembles a uniform random
// sample of the live population.
//
// The implementation here is a pure state machine: it computes what to send
// and how to merge what is received, but performs no I/O. The cycle-driven
// simulator (internal/sim) and the live asynchronous runtime (internal/node)
// both drive the same state machine, so simulation results transfer directly
// to the deployable system.
package cyclon

import (
	"fmt"
	"math/rand"

	"ringcast/internal/ident"
	"ringcast/internal/view"
)

// Config carries the CYCLON parameters.
type Config struct {
	// ViewSize is the partial-view length ("cyc" in the paper; 20 in all of
	// the paper's experiments).
	ViewSize int
	// ShuffleLen is how many entries are exchanged per shuffle (ℓ). It must
	// be at most ViewSize. The CYCLON paper uses 8 with a view of 20.
	ShuffleLen int
	// RandomPeerSelection swaps with a uniformly random neighbour instead of
	// the oldest one — the "basic shuffling" variant, kept as an ablation of
	// CYCLON's age-based ("enhanced") selection. Age-based selection is what
	// bounds the lifetime of dangling links under churn.
	RandomPeerSelection bool
}

// DefaultConfig returns the parameters used throughout the paper's
// evaluation: view length 20, shuffle length 8.
func DefaultConfig() Config {
	return Config{ViewSize: 20, ShuffleLen: 8}
}

func (c Config) validate() error {
	if c.ViewSize <= 0 {
		return fmt.Errorf("cyclon: ViewSize must be positive, got %d", c.ViewSize)
	}
	if c.ShuffleLen <= 0 || c.ShuffleLen > c.ViewSize {
		return fmt.Errorf("cyclon: ShuffleLen must be in [1,%d], got %d", c.ViewSize, c.ShuffleLen)
	}
	return nil
}

// Cyclon is the per-node protocol state. It is not safe for concurrent use;
// the live runtime serializes access behind its own mutex.
type Cyclon struct {
	self ident.ID
	addr string
	cfg  Config
	view *view.View

	// Scratch buffers reused across protocol steps. They never escape a
	// single method call, so single-threaded callers (the simulator) and
	// mutex-serialized callers (the live node) are both safe.
	pool        []view.Entry // sampling pool for shuffle payloads
	replaceable []ident.ID   // merge's shipped-entry bookkeeping
}

// New constructs the protocol state for one node.
func New(self ident.ID, addr string, cfg Config) (*Cyclon, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if self.IsNil() {
		return nil, fmt.Errorf("cyclon: self ID must not be nil")
	}
	return &Cyclon{self: self, addr: addr, cfg: cfg, view: view.New(cfg.ViewSize)}, nil
}

// MustNew is New for callers with statically valid configuration (tests,
// simulator setup).
func MustNew(self ident.ID, addr string, cfg Config) *Cyclon {
	c, err := New(self, addr, cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Self returns the node's own identifier.
func (c *Cyclon) Self() ident.ID { return c.self }

// View exposes the node's partial view. Callers must not retain the pointer
// across protocol steps in concurrent contexts.
func (c *Cyclon) View() *view.View { return c.view }

// Resize re-tunes the partial-view length at runtime. The new size must
// still admit the configured ShuffleLen; shrinking evicts the oldest
// entries first. External synchronization (the node mutex) is the caller's
// job, as with every other method.
func (c *Cyclon) Resize(viewSize int) error {
	if viewSize < c.cfg.ShuffleLen {
		return fmt.Errorf("cyclon: ViewSize %d below ShuffleLen %d", viewSize, c.cfg.ShuffleLen)
	}
	c.cfg.ViewSize = viewSize
	c.view.SetCap(viewSize)
	return nil
}

// AddContact seeds the view with a bootstrap contact, as done when a node
// joins the network. Duplicate or self contacts are ignored.
func (c *Cyclon) AddContact(id ident.ID, addr string) {
	if id == c.self || id.IsNil() {
		return
	}
	c.view.Insert(view.Entry{Node: id, Addr: addr, Age: 0})
}

// Shuffle is an in-flight exchange initiated by this node.
type Shuffle struct {
	// Peer is the neighbour chosen for the exchange (the oldest entry).
	Peer view.Entry
	// Sent is the payload shipped to the peer: up to ShuffleLen-1 random
	// entries plus a fresh entry describing the initiator itself.
	Sent []view.Entry
}

// StartShuffle begins one protocol cycle: ages the whole view, removes the
// oldest neighbour Q, and builds the payload to send to Q. It returns false
// when the view is empty, in which case the node has no one to gossip with
// this cycle.
//
// Per the protocol, Q's entry is removed from the view immediately: if Q
// turns out to be dead the stale link is already gone, which is what gives
// CYCLON its self-cleaning behaviour under churn.
func (c *Cyclon) StartShuffle(rng *rand.Rand) (Shuffle, bool) {
	c.view.AgeAll()
	return c.buildShuffle(rng)
}

// RetryShuffle is StartShuffle without the aging step. It is used when the
// peer selected by a previous StartShuffle in the same cycle proved
// unreachable: the dead entry is already gone (StartShuffle removed it), and
// the node retries with the next-oldest neighbour without double-aging its
// view.
func (c *Cyclon) RetryShuffle(rng *rand.Rand) (Shuffle, bool) {
	return c.buildShuffle(rng)
}

func (c *Cyclon) buildShuffle(rng *rand.Rand) (Shuffle, bool) {
	var (
		peer view.Entry
		ok   bool
	)
	if c.cfg.RandomPeerSelection {
		peer, ok = c.view.RandomEntry(rng)
	} else {
		peer, ok = c.view.Oldest()
	}
	if !ok {
		return Shuffle{}, false
	}
	c.view.Remove(peer.Node)
	// Sent escapes into the returned Shuffle (the live runtime keeps it in
	// its pending table across round trips), so it gets exactly one fresh
	// allocation; the sampling pool itself is scratch.
	sent := c.sampleAppend(make([]view.Entry, 0, c.cfg.ShuffleLen), c.cfg.ShuffleLen-1, rng)
	sent = append(sent, view.Entry{Node: c.self, Addr: c.addr, Age: 0})
	return Shuffle{Peer: peer, Sent: sent}, true
}

// sampleAppend appends up to n distinct random view entries to dst, drawn
// uniformly without replacement. It consumes the same randomness as
// view.RandomEntries with no exclusions.
func (c *Cyclon) sampleAppend(dst []view.Entry, n int, rng *rand.Rand) []view.Entry {
	if n <= 0 {
		return dst
	}
	pool := c.view.AppendTo(c.pool[:0])
	c.pool = pool
	if n > len(pool) {
		n = len(pool)
	}
	// Partial Fisher-Yates: shuffle only the prefix we take.
	for i := 0; i < n; i++ {
		j := i + rng.Intn(len(pool)-i)
		pool[i], pool[j] = pool[j], pool[i]
	}
	return append(dst, pool[:n]...)
}

// HandleRequest processes a shuffle request received from another node and
// returns the reply payload (up to ShuffleLen random entries of the local
// view, chosen before merging). The received entries are merged into the
// local view, preferring to overwrite the entries just sent back.
func (c *Cyclon) HandleRequest(received []view.Entry, rng *rand.Rand) []view.Entry {
	reply := c.sampleAppend(make([]view.Entry, 0, c.cfg.ShuffleLen), c.cfg.ShuffleLen, rng)
	c.merge(received, reply)
	return reply
}

// HandleReply completes a shuffle this node initiated: the peer's reply is
// merged into the view, preferring to overwrite the entries that were sent
// out in the request.
func (c *Cyclon) HandleReply(sh Shuffle, received []view.Entry) {
	c.merge(received, sh.Sent)
}

// merge folds incoming entries into the view following the CYCLON rules:
// discard entries for self and nodes already known, fill empty slots first,
// then replace entries that were shipped to the peer (each at most once).
func (c *Cyclon) merge(incoming, shipped []view.Entry) {
	replaceable := c.replaceable[:0]
	for _, s := range shipped {
		if s.Node != c.self {
			replaceable = append(replaceable, s.Node)
		}
	}
	c.replaceable = replaceable
	for _, e := range incoming {
		if e.Node == c.self || e.Node.IsNil() || c.view.Contains(e.Node) {
			continue
		}
		if c.view.Add(e) {
			continue
		}
		for i, r := range replaceable {
			if c.view.Remove(r) {
				c.view.Add(e)
				replaceable = append(replaceable[:i], replaceable[i+1:]...)
				break
			}
		}
		// If no shipped entry remains in the view, the incoming entry is
		// discarded, per the protocol.
	}
}

// Remove drops any entry for id, e.g. after a failed exchange with that
// node. It reports whether an entry was removed.
func (c *Cyclon) Remove(id ident.ID) bool { return c.view.Remove(id) }
