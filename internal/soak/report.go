package soak

// The machine-readable soak report. Every published message is accounted
// for pair-by-pair: a gated (message, expected-node) pair is delivered,
// missing, or unverifiable (the node crashed after the publish, taking its
// in-memory ledger with it — the delivery may have happened; the evidence
// is gone). The completeness verdict covers only verifiable pairs, which
// is exactly the paper's claim shape: completeness among nodes that stayed
// up and connected.

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"

	"ringcast/internal/node"
	"ringcast/internal/transport"
	"ringcast/internal/wire"
)

// LatencySummary summarizes publish-to-deliver latency over gated pairs,
// in milliseconds.
type LatencySummary struct {
	P50     float64 `json:"p50_ms"`
	P95     float64 `json:"p95_ms"`
	P99     float64 `json:"p99_ms"`
	Max     float64 `json:"max_ms"`
	Samples int     `json:"samples"`
}

// TopicTotals is the per-topic slice of the delivery ledger.
type TopicTotals struct {
	Published    int `json:"published"`
	GatedPairs   int `json:"gated_pairs"`
	Delivered    int `json:"delivered_pairs"`
	Missing      int `json:"missing_pairs"`
	Unverifiable int `json:"unverifiable_pairs"`
}

// Report is the soak run's machine-readable outcome (BENCH_PR9.json).
type Report struct {
	N           int      `json:"n"`
	Topics      []string `json:"topics"`
	Scenario    string   `json:"scenario"`
	Seed        int64    `json:"seed"`
	DurationSec float64  `json:"duration_sec"`

	Published     int `json:"published"`
	PublishErrors int `json:"publish_errors"`
	GatedMessages int `json:"gated_messages"`

	GatedPairs        int     `json:"gated_pairs"`
	DeliveredPairs    int     `json:"delivered_pairs"`
	MissingPairs      int     `json:"missing_pairs"`
	UnverifiablePairs int     `json:"unverifiable_pairs"`
	Completeness      float64 `json:"completeness"`
	CompletenessOK    bool    `json:"completeness_ok"`
	// MissingSample lists up to 20 missing pairs for debugging.
	MissingSample []string `json:"missing_sample,omitempty"`

	PublishesPerSec float64        `json:"publishes_per_sec"`
	MsgsPerSec      float64        `json:"msgs_per_sec"` // fleet-wide deliveries/sec
	Latency         LatencySummary `json:"latency"`
	// LatencyPreRetune and LatencyPostRetune split the gated latency samples
	// around the first set-param step (absent when the timeline has none) —
	// the before/after evidence that a live re-tune changed behavior.
	LatencyPreRetune  *LatencySummary `json:"latency_pre_retune,omitempty"`
	LatencyPostRetune *LatencySummary `json:"latency_post_retune,omitempty"`

	Restarts       int            `json:"restarts"`
	RestartsByNode map[string]int `json:"restarts_by_node,omitempty"`
	CrashLoops     []string       `json:"crash_loops,omitempty"`
	InjectedKills  int            `json:"injected_kills"`
	Lagging        []string       `json:"lagging,omitempty"`
	Wedged         []string       `json:"wedged,omitempty"`

	// Backpressure and transport counters summed over the surviving fleet.
	Transport transport.Stats `json:"transport"`
	Node      node.Stats      `json:"node"`

	PerTopic map[string]TopicTotals `json:"per_topic"`
	// MetricsSamples is the scraped /metrics trail (Config.Metrics only).
	MetricsSamples []MetricSample `json:"metrics_samples,omitempty"`
	Notes          []string       `json:"notes,omitempty"`
}

// WriteFile writes the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// crashedAfter reports whether proc p crashed at or after instant (Unix
// nanoseconds), wiping the in-memory ledger evidence for earlier publishes.
func crashedAfter(p *proc, instant int64) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.everCrashed {
		return false
	}
	// crashes is pruned to the crash-loop window; firstCrash covers the
	// conservative "ever crashed after" answer for older instants.
	if p.firstCrash.UnixNano() >= instant {
		return true
	}
	for _, t := range p.crashes {
		if t.UnixNano() >= instant {
			return true
		}
	}
	return false
}

// buildReport folds the publish records against the collected ledgers.
func (f *fleet) buildReport(ledgers map[int]map[string]map[wire.MsgID]int64, elapsed time.Duration) *Report {
	rep := &Report{
		N:           f.cfg.N,
		Topics:      f.topics,
		Scenario:    f.cfg.Scenario.Name,
		Seed:        f.cfg.Seed,
		DurationSec: elapsed.Seconds(),
		PerTopic:    make(map[string]TopicTotals, len(f.topics)),
	}

	f.pmu.Lock()
	records := f.records
	rep.Published = f.published
	rep.PublishErrors = f.pubErrs
	f.pmu.Unlock()

	var latencies []int64
	var latAt []int64 // publish instant per latency sample, for the retune split
	for _, r := range records {
		tt := rep.PerTopic[r.topic]
		tt.Published++
		if !r.gated {
			rep.PerTopic[r.topic] = tt
			continue
		}
		rep.GatedMessages++
		for _, j := range r.expected {
			tt.GatedPairs++
			rep.GatedPairs++
			byTopic, fetched := ledgers[j]
			if fetched {
				if at, ok := byTopic[r.topic][r.id]; ok {
					tt.Delivered++
					rep.DeliveredPairs++
					d := at - r.at
					if d < 0 {
						d = 0
					}
					latencies = append(latencies, d)
					latAt = append(latAt, r.at)
					continue
				}
			}
			if !fetched || crashedAfter(f.procs[j], r.at) {
				// The evidence is gone (process down at collection, or it
				// crashed after the publish): not a protocol verdict.
				tt.Unverifiable++
				rep.UnverifiablePairs++
				continue
			}
			tt.Missing++
			rep.MissingPairs++
			if len(rep.MissingSample) < 20 {
				rep.MissingSample = append(rep.MissingSample,
					fmt.Sprintf("%s %s %s->%s", r.topic, r.id,
						f.procs[r.origin].name, f.procs[j].name))
			}
		}
		rep.PerTopic[r.topic] = tt
	}
	if verifiable := rep.DeliveredPairs + rep.MissingPairs; verifiable > 0 {
		rep.Completeness = float64(rep.DeliveredPairs) / float64(verifiable)
	}
	rep.CompletenessOK = rep.GatedPairs > 0 && rep.MissingPairs == 0
	// Split the samples around the first set-param fire BEFORE summarizing:
	// summarizeLatency sorts its slice in place, which would scramble the
	// latency/publish-instant pairing.
	f.gmu.Lock()
	var retuneAt int64
	if f.plan != nil && !f.plan.retune.IsZero() {
		retuneAt = f.plan.retune.UnixNano()
	}
	f.gmu.Unlock()
	if retuneAt != 0 {
		var pre, post []int64
		for i, d := range latencies {
			if latAt[i] < retuneAt {
				pre = append(pre, d)
			} else {
				post = append(post, d)
			}
		}
		preSum, postSum := summarizeLatency(pre), summarizeLatency(post)
		rep.LatencyPreRetune, rep.LatencyPostRetune = &preSum, &postSum
	}
	rep.Latency = summarizeLatency(latencies)
	rep.PublishesPerSec = float64(rep.Published) / elapsed.Seconds()

	var deliveredTotal int
	for _, idx := range sortedKeys(ledgers) {
		for _, topic := range f.topics {
			deliveredTotal += len(ledgers[idx][topic])
		}
	}
	rep.MsgsPerSec = float64(deliveredTotal) / elapsed.Seconds()

	rep.RestartsByNode = make(map[string]int)
	for _, p := range f.procs {
		p.mu.Lock()
		restarts := p.restarts
		p.mu.Unlock()
		if restarts > 0 {
			rep.RestartsByNode[p.name] = restarts
			rep.Restarts += restarts
		}
	}

	f.mmu.Lock()
	rep.MetricsSamples = append([]MetricSample(nil), f.metricsLog...)
	f.mmu.Unlock()

	f.smu.Lock()
	rep.InjectedKills = f.kills
	rep.CrashLoops = append([]string(nil), f.crashLoop...)
	for _, name := range sortedKeys(f.lagging) {
		rep.Lagging = append(rep.Lagging, name)
	}
	rep.Wedged = append([]string(nil), f.wedgedLog...)
	rep.Notes = append([]string(nil), f.notes...)
	f.smu.Unlock()
	sort.Strings(rep.CrashLoops)

	// Counter totals from whatever part of the fleet still answers.
	for _, p := range f.procs {
		if st, _ := p.snapshot(); st != stateUp {
			continue
		}
		c, err := DialControl(p.control(), 2*time.Second)
		if err != nil {
			continue
		}
		if stats, err := c.Stats(); err == nil {
			rep.Transport.FramesSent += stats.Transport.FramesSent
			rep.Transport.BytesSent += stats.Transport.BytesSent
			rep.Transport.QueueDepth += stats.Transport.QueueDepth
			rep.Transport.Writers += stats.Transport.Writers
			rep.Transport.Drops += stats.Transport.Drops
			rep.Transport.Rejects += stats.Transport.Rejects
			rep.Transport.DialFailures += stats.Transport.DialFailures
			rep.Node.Published += stats.Node.Published
			rep.Node.Delivered += stats.Node.Delivered
			rep.Node.Duplicates += stats.Node.Duplicates
			rep.Node.Forwarded += stats.Node.Forwarded
			rep.Node.SendErrors += stats.Node.SendErrors
			rep.Node.QueueFull += stats.Node.QueueFull
			rep.Node.Shuffles += stats.Node.Shuffles
			rep.Node.VicExchanges += stats.Node.VicExchanges
		}
		c.Close()
	}
	return rep
}

// summarizeLatency computes exact percentiles over the sample set.
func summarizeLatency(ns []int64) LatencySummary {
	if len(ns) == 0 {
		return LatencySummary{}
	}
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	q := func(p float64) float64 {
		idx := int(p * float64(len(ns)-1))
		return float64(ns[idx]) / 1e6
	}
	return LatencySummary{
		P50:     q(0.50),
		P95:     q(0.95),
		P99:     q(0.99),
		Max:     float64(ns[len(ns)-1]) / 1e6,
		Samples: len(ns),
	}
}

// sortedKeys returns a map's keys in sorted order (the repo's map-order
// determinism contract for any fold over map entries).
func sortedKeys[K interface {
	~int | ~string
}, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
