package soak

// Building the node binary the harness launches. Both entry points (go
// test at small N, cmd/ringcast-soak at large N) need a compiled
// ringcast-node; this helper keeps the invocation in one place so the
// binary the soak exercises is always the tree being tested, never a
// stale artifact with a different seed or protocol behavior.

import (
	"fmt"
	"os/exec"
	"path/filepath"
)

// BuildNodeBin compiles cmd/ringcast-node into dir with the local go
// toolchain and returns the binary path. The working directory must be
// inside the module (any package directory or the repo root).
func BuildNodeBin(dir string) (string, error) {
	bin := filepath.Join(dir, "ringcast-node")
	cmd := exec.Command("go", "build", "-o", bin, "ringcast/cmd/ringcast-node")
	if out, err := cmd.CombinedOutput(); err != nil {
		return "", fmt.Errorf("soak: build ringcast-node: %v\n%s", err, out)
	}
	return bin, nil
}
