package soak

// The node-side half of the harness: every ringcast-node launched with
// -control runs an Agent, a line-oriented TCP control server the harness
// uses for health probes, fault programming, publish injection and the
// delivery-completeness ledger. One command per line, one JSON object per
// response line; the protocol is deliberately dumb so a human can drive a
// node with nc(1) while the harness drives the rest of the fleet.

import (
	"fmt"
	"net"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"ringcast/internal/ident"
	"ringcast/internal/node"
	"ringcast/internal/transport"
	"ringcast/internal/wire"
)

// TopicStatus is one topic overlay's health snapshot, as reported by the
// control protocol's status command.
type TopicStatus struct {
	// ID is the node's ring identifier on this topic's overlay (per-topic
	// identities differ: each topic derives its own seeded ID).
	ID uint64 `json:"id"`
	// View is the CYCLON view size (0 = not yet joined).
	View int `json:"view"`
	// Pred and Succ are the ring-neighbor IDs, valid when Ring is true.
	Pred uint64 `json:"pred"`
	Succ uint64 `json:"succ"`
	// Ring reports whether the node knows both ring neighbors.
	Ring bool `json:"ring"`
}

// AgentStats is the counter snapshot returned by the stats command.
type AgentStats struct {
	// Node aggregates the protocol counters across all topic overlays.
	Node node.Stats `json:"node"`
	// Transport is the shared base transport's counters.
	Transport transport.Stats `json:"transport"`
	// Delivered counts unique messages recorded in the delivery ledger
	// across all topics. Unlike Node.Delivered it survives topic
	// aggregation and is the lag detector's progress signal.
	Delivered int64 `json:"delivered"`
	// Wedged reports whether the delivery path is currently wedged.
	Wedged bool `json:"wedged"`
}

// PubAck acknowledges a control-initiated publish.
type PubAck struct {
	// Origin, Epoch and Seq identify the message (wire.MsgID). Epoch is the
	// publisher's incarnation: a supervised restart bumps it so post-restart
	// sequence numbers cannot collide with pre-crash message IDs.
	Origin uint64 `json:"origin"`
	Epoch  uint32 `json:"epoch,omitempty"`
	Seq    uint64 `json:"seq"`
	// T is the publish wall-clock time in Unix nanoseconds, stamped on the
	// publishing node just before dissemination started.
	T int64 `json:"t"`
}

// LedgerEntry records one delivered message and its arrival time.
type LedgerEntry struct {
	// Origin, Epoch and Seq identify the message (wire.MsgID).
	Origin uint64 `json:"o"`
	Epoch  uint32 `json:"e,omitempty"`
	Seq    uint64 `json:"q"`
	// T is the arrival wall-clock time in Unix nanoseconds.
	T int64 `json:"t"`
}

// Hooks wires an Agent to the process's node runtime. Every func must be
// safe for concurrent use; Quit must not block (signal a channel, then let
// the main loop shut down).
type Hooks struct {
	// ID returns the node's ring identifier (the first topic's, for
	// multi-topic peers — the scenario driver resolves arcs over it).
	ID func() ident.ID
	// Addr returns the node's transport address.
	Addr func() string
	// Topics lists the subscribed topics (or the plain pseudo-topic).
	Topics []string
	// Publish originates a message on a topic.
	Publish func(topic string, body []byte) (wire.MsgID, error)
	// Status snapshots every topic overlay's health.
	Status func() map[string]TopicStatus
	// NodeStats aggregates protocol counters across topics.
	NodeStats func() node.Stats
	// TransportStats snapshots the shared transport counters.
	TransportStats func() transport.Stats
	// Faults is the node's fault-injection surface; nil disables the
	// block/unblock/heal/loss commands.
	Faults *transport.FaultInjector
	// SetParam sets one config-engine key to a raw value; nil disables the
	// set command. The value is validated and canonicalized by the engine.
	SetParam func(key, value string) error
	// GetParam returns a key's canonical value and the engine's current
	// version; nil disables the get command.
	GetParam func(key string) (value string, version uint64, err error)
	// Quit asks the process to shut down cleanly.
	Quit func()
}

// Agent is the per-process control server. Create with NewAgent (which
// binds the listener, so the port is known before the node exists), route
// deliveries through Deliver, then Start serving once the node runtime is
// up.
type Agent struct {
	ln    net.Listener
	hmu   sync.RWMutex
	hooks Hooks

	mu        sync.Mutex
	ledger    map[string]map[wire.MsgID]int64
	delivered int64
	wedge     chan struct{} // non-nil while the delivery path is wedged

	done chan struct{}
	once sync.Once
	wg   sync.WaitGroup
}

// NewAgent binds the control listener on addr (host:0 for an ephemeral
// port). The agent records deliveries immediately but serves no connections
// until Start.
func NewAgent(addr string) (*Agent, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("soak: control listen %s: %w", addr, err)
	}
	return &Agent{
		ln:     ln,
		ledger: make(map[string]map[wire.MsgID]int64),
		done:   make(chan struct{}),
	}, nil
}

// Addr returns the control listener's address.
func (a *Agent) Addr() string { return a.ln.Addr().String() }

// Start wires the hooks and begins serving control connections.
func (a *Agent) Start(h Hooks) {
	a.hmu.Lock()
	a.hooks = h
	a.hmu.Unlock()
	a.wg.Add(1)
	go a.acceptLoop()
}

// Deliver records one delivered message in the topic's ledger, stamping
// its arrival time. While the agent is wedged the call blocks — it runs on
// the transport's inbound path, so a wedge simulates a stuck consumer
// backing the whole delivery pipeline up, exactly what the harness's lag
// detector exists to catch.
func (a *Agent) Deliver(topic string, id wire.MsgID) {
	a.mu.Lock()
	w := a.wedge
	a.mu.Unlock()
	if w != nil {
		select {
		case <-w:
		case <-a.done:
			return
		}
	}
	now := time.Now().UnixNano()
	a.mu.Lock()
	m := a.ledger[topic]
	if m == nil {
		m = make(map[wire.MsgID]int64)
		a.ledger[topic] = m
	}
	if _, dup := m[id]; !dup {
		m[id] = now
		a.delivered++
	}
	a.mu.Unlock()
}

// Close stops the control server and releases a pending wedge.
func (a *Agent) Close() error {
	a.once.Do(func() {
		close(a.done)
		a.ln.Close()
	})
	a.wg.Wait()
	return nil
}

func (a *Agent) acceptLoop() {
	defer a.wg.Done()
	for {
		conn, err := a.ln.Accept()
		if err != nil {
			select {
			case <-a.done:
				return
			default:
			}
			// The control listener has no EMFILE-scale fan-in; any
			// persistent error here means the listener is gone.
			return
		}
		a.wg.Add(1)
		go a.serve(conn)
	}
}

// serve handles one control connection: one command per line, one JSON
// response line each.
func (a *Agent) serve(conn net.Conn) {
	defer a.wg.Done()
	defer conn.Close()
	// Tear the connection down when the agent closes so Close unblocks
	// pending reads.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-a.done:
			conn.Close()
		case <-stop:
		}
	}()
	rd := newLineReader(conn)
	for {
		line, err := rd.next()
		if err != nil {
			return
		}
		resp := a.handle(strings.TrimSpace(line))
		if err := writeResp(conn, resp); err != nil {
			return
		}
	}
}

// handle executes one control command and builds its response.
func (a *Agent) handle(line string) ctlResp {
	a.hmu.RLock()
	h := a.hooks
	a.hmu.RUnlock()
	cmd, rest, _ := strings.Cut(line, " ")
	switch cmd {
	case "ping":
		return ctlResp{OK: true}
	case "info":
		return ctlResp{
			OK:     true,
			ID:     uint64(h.ID()),
			Addr:   h.Addr(),
			Topics: h.Topics,
			PID:    os.Getpid(),
		}
	case "status":
		return ctlResp{OK: true, Status: h.Status()}
	case "publish":
		topic, body, ok := strings.Cut(rest, " ")
		if !ok || topic == "" {
			return errResp("publish: want topic and body")
		}
		t := time.Now().UnixNano()
		id, err := h.Publish(topic, []byte(body))
		if err != nil {
			return errResp(err.Error())
		}
		return ctlResp{OK: true, Ack: &PubAck{Origin: uint64(id.Origin), Epoch: id.Epoch, Seq: id.Seq, T: t}}
	case "stats":
		st := AgentStats{Node: h.NodeStats(), Transport: h.TransportStats()}
		a.mu.Lock()
		st.Delivered = a.delivered
		st.Wedged = a.wedge != nil
		a.mu.Unlock()
		return ctlResp{OK: true, Stats: &st}
	case "ledger":
		return a.ledgerResp(rest)
	case "block", "unblock":
		if h.Faults == nil {
			return errResp("no fault surface")
		}
		addrs := strings.Fields(rest)
		if len(addrs) == 0 {
			return errResp(cmd + ": want at least one address")
		}
		if cmd == "block" {
			h.Faults.Block(addrs...)
		} else {
			h.Faults.Unblock(addrs...)
		}
		return ctlResp{OK: true}
	case "heal":
		if h.Faults == nil {
			return errResp("no fault surface")
		}
		h.Faults.HealAll()
		return ctlResp{OK: true}
	case "loss":
		if h.Faults == nil {
			return errResp("no fault surface")
		}
		rate, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			return errResp("loss: " + err.Error())
		}
		h.Faults.SetLoss(rate)
		return ctlResp{OK: true}
	case "set":
		if h.SetParam == nil {
			return errResp("no config surface")
		}
		key, value, ok := strings.Cut(rest, " ")
		if !ok || key == "" {
			return errResp("set: want key and value")
		}
		if err := h.SetParam(key, strings.TrimSpace(value)); err != nil {
			return errResp(err.Error())
		}
		return ctlResp{OK: true}
	case "get":
		if h.GetParam == nil {
			return errResp("no config surface")
		}
		key := strings.TrimSpace(rest)
		if key == "" {
			return errResp("get: want key")
		}
		value, version, err := h.GetParam(key)
		if err != nil {
			return errResp(err.Error())
		}
		return ctlResp{OK: true, Value: value, Version: version}
	case "wedge":
		a.mu.Lock()
		if a.wedge == nil {
			a.wedge = make(chan struct{})
		}
		a.mu.Unlock()
		return ctlResp{OK: true}
	case "unwedge":
		a.mu.Lock()
		if a.wedge != nil {
			close(a.wedge)
			a.wedge = nil
		}
		a.mu.Unlock()
		return ctlResp{OK: true}
	case "quit":
		if h.Quit != nil {
			h.Quit()
		}
		return ctlResp{OK: true}
	}
	return errResp("unknown command " + strconv.Quote(cmd))
}

// ledgerResp snapshots one topic's delivery ledger in (origin, seq) order.
func (a *Agent) ledgerResp(topic string) ctlResp {
	topic = strings.TrimSpace(topic)
	if topic == "" {
		return errResp("ledger: want topic")
	}
	a.mu.Lock()
	m := a.ledger[topic]
	ids := make([]wire.MsgID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if ids[i].Origin != ids[j].Origin {
			return ids[i].Origin < ids[j].Origin
		}
		if ids[i].Epoch != ids[j].Epoch {
			return ids[i].Epoch < ids[j].Epoch
		}
		return ids[i].Seq < ids[j].Seq
	})
	entries := make([]LedgerEntry, 0, len(ids))
	for _, id := range ids {
		entries = append(entries, LedgerEntry{Origin: uint64(id.Origin), Epoch: id.Epoch, Seq: id.Seq, T: m[id]})
	}
	a.mu.Unlock()
	return ctlResp{OK: true, Entries: entries}
}
