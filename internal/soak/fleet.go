package soak

// Fleet state: the supervised processes, the remote fault surfaces the
// scenario driver programs, the publish ledger the completeness gate
// checks, and the schedule-derived gating plan. The gate follows the
// paper's one-shot dissemination semantics: a publish is only expected at
// nodes reachable from the origin at publish time, and publishes inside a
// guard window around any scheduled fault transition (or a node's own
// lifecycle transition) are measured but not gated, because their outcome
// is a race by construction, not a verdict on the protocol.

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"ringcast/internal/runner"
	"ringcast/internal/wire"
)

// remoteFaults implements scenario.FaultSurface and scenario.ParamSurface
// over the control protocol. It records the desired state under its mutex
// and performs the network call outside it (the lockio contract), so the
// supervisor can replay the state onto a restarted process and the gate can
// ask "who is partitioned from whom" without touching the network.
type remoteFaults struct {
	f *fleet
	p *proc

	mu      sync.Mutex
	blocked map[string]bool
	loss    float64
	params  map[string]string // desired config-engine overrides, by key
}

func newRemoteFaults(f *fleet, p *proc) *remoteFaults {
	return &remoteFaults{f: f, p: p, blocked: make(map[string]bool), params: make(map[string]string)}
}

// Block implements scenario.FaultSurface.
func (r *remoteFaults) Block(addrs ...string) {
	r.mu.Lock()
	for _, a := range addrs {
		r.blocked[a] = true
	}
	r.mu.Unlock()
	r.send(func(c *Client) error { return c.Block(addrs...) })
}

// Unblock implements scenario.FaultSurface.
func (r *remoteFaults) Unblock(addrs ...string) {
	r.mu.Lock()
	for _, a := range addrs {
		delete(r.blocked, a)
	}
	r.mu.Unlock()
	r.send(func(c *Client) error { return c.Unblock(addrs...) })
}

// HealAll implements scenario.FaultSurface.
func (r *remoteFaults) HealAll() {
	r.mu.Lock()
	r.blocked = make(map[string]bool)
	r.mu.Unlock()
	r.send(func(c *Client) error { return c.Heal() })
}

// SetLoss implements scenario.FaultSurface.
func (r *remoteFaults) SetLoss(rate float64) {
	r.mu.Lock()
	r.loss = rate
	r.mu.Unlock()
	r.send(func(c *Client) error { return c.SetLoss(rate) })
}

// SetParam implements scenario.ParamSurface: it records the desired
// config-engine override (so a supervised restart replays it — a relaunched
// process boots with its flag-derived defaults) and pushes it through the
// control protocol.
func (r *remoteFaults) SetParam(key, value string) {
	r.mu.Lock()
	r.params[key] = value
	r.mu.Unlock()
	r.send(func(c *Client) error { return c.SetParam(key, value) })
}

// blocks reports the desired state for one destination.
func (r *remoteFaults) blocks(addr string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.blocked[addr]
}

// send dials a short-lived control client for one fault command. Faults
// change at scenario-step cadence, so connection churn is negligible and
// each caller (driver, supervisor) stays free of shared-client locking.
func (r *remoteFaults) send(op func(*Client) error) {
	c, err := DialControl(r.p.control(), 5*time.Second)
	if err != nil {
		r.f.note("fault program %s: %v", r.p.name, err)
		return
	}
	defer c.Close()
	if err := op(c); err != nil {
		r.f.note("fault program %s: %v", r.p.name, err)
	}
}

// replay re-programs the desired fault and config state onto a freshly
// restarted process, whose injector and config engine came up clean.
func (r *remoteFaults) replay() {
	r.mu.Lock()
	addrs := make([]string, 0, len(r.blocked))
	for a := range r.blocked {
		addrs = append(addrs, a)
	}
	sort.Strings(addrs)
	loss := r.loss
	keys := make([]string, 0, len(r.params))
	for k := range r.params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	params := make(map[string]string, len(r.params))
	for k, v := range r.params {
		params[k] = v
	}
	r.mu.Unlock()
	r.send(func(c *Client) error {
		if err := c.Heal(); err != nil {
			return err
		}
		if len(addrs) > 0 {
			if err := c.Block(addrs...); err != nil {
				return err
			}
		}
		if loss > 0 {
			if err := c.SetLoss(loss); err != nil {
				return err
			}
		}
		for _, k := range keys {
			if err := c.SetParam(k, params[k]); err != nil {
				return err
			}
		}
		return nil
	})
}

// pubRecord is one published message and its completeness expectation.
type pubRecord struct {
	topic  string
	id     wire.MsgID
	origin int   // proc index
	at     int64 // publish instant, Unix nanoseconds
	gated  bool
	// expected lists proc indices the message must reach (gated only).
	expected []int
}

// fleet owns the supervised processes and every cross-cutting counter.
type fleet struct {
	cfg    Config
	topics []string
	procs  []*proc

	done       chan struct{} // closed once, at shutdown
	stopOnce   sync.Once
	wg         sync.WaitGroup
	supervised bool // startSupervisors ran (set before any goroutine reads it)

	// gatePlan is derived from the scenario schedule at publish-phase
	// start; nil until then.
	gmu  sync.Mutex
	plan *gatePlan

	pmu       sync.Mutex
	records   []pubRecord
	published int
	pubErrs   int

	// mmu guards the scraped metrics trail (Config.Metrics only).
	mmu        sync.Mutex
	metricsLog []MetricSample

	smu       sync.Mutex
	kills     int
	crashLoop []string
	lagging   map[string]time.Time
	wedged    map[int]bool
	wedgeAt   map[int]time.Time // last wedge/unwedge transition per proc
	wedgedLog []string
	notes     []string
}

func newFleet(cfg Config) *fleet {
	return &fleet{
		cfg:     cfg,
		topics:  cfg.topics(),
		done:    make(chan struct{}),
		lagging: make(map[string]time.Time),
		wedged:  make(map[int]bool),
		wedgeAt: make(map[int]time.Time),
	}
}

// stopping reports whether shutdown began.
func (f *fleet) stopping() bool {
	select {
	case <-f.done:
		return true
	default:
		return false
	}
}

// stop begins shutdown; supervisors stop restarting.
func (f *fleet) stop() {
	f.stopOnce.Do(func() { close(f.done) })
}

// note records a non-fatal observation for the report.
func (f *fleet) note(format string, args ...any) {
	f.smu.Lock()
	f.notes = append(f.notes, fmt.Sprintf(format, args...))
	f.smu.Unlock()
}

// recordPub appends one publish record.
func (f *fleet) recordPub(r pubRecord) {
	f.pmu.Lock()
	f.records = append(f.records, r)
	f.published++
	f.pmu.Unlock()
}

// pubCount returns how many publishes succeeded so far (the lag detector's
// "was the fleet publishing" signal).
func (f *fleet) pubCount() int {
	f.pmu.Lock()
	defer f.pmu.Unlock()
	return f.published
}

// notePubErr counts a failed publish attempt.
func (f *fleet) notePubErr() {
	f.pmu.Lock()
	f.pubErrs++
	f.pmu.Unlock()
}

// setWedged stamps a wedge-state transition for proc i.
func (f *fleet) setWedged(i int, wedged bool) {
	f.smu.Lock()
	f.wedged[i] = wedged
	f.wedgeAt[i] = time.Now()
	if wedged {
		f.wedgedLog = append(f.wedgedLog, f.procs[i].name)
	}
	f.smu.Unlock()
}

// wedgeState reports proc i's wedge flag and last transition.
func (f *fleet) wedgeState(i int) (bool, time.Time) {
	f.smu.Lock()
	defer f.smu.Unlock()
	return f.wedged[i], f.wedgeAt[i]
}

// flagLag records a lag detection for proc i (first detection wins).
func (f *fleet) flagLag(i int) {
	f.smu.Lock()
	name := f.procs[i].name
	if _, dup := f.lagging[name]; !dup {
		f.lagging[name] = time.Now()
	}
	f.smu.Unlock()
}

// killByAddr force-stops the process whose transport address matches,
// counting it as a scenario-injected kill.
func (f *fleet) killByAddr(addr string) {
	for _, p := range f.procs {
		if p.addr() == addr {
			f.smu.Lock()
			f.kills++
			f.smu.Unlock()
			f.note("scenario killed %s", p.name)
			p.kill()
			return
		}
	}
}

// liveBootstrap returns a join target for a restarting process: the
// transport address of the lowest-index process currently up that the
// restarter is not partitioned from (joining across an active partition
// would stall the join handshake until the retry deadline kills the
// launch). Falls back to process 0's pinned address.
func (f *fleet) liveBootstrap(exclude int) string {
	for i, p := range f.procs {
		if i == exclude {
			continue
		}
		if st, _ := p.snapshot(); st == stateUp && !f.blockedBetween(exclude, i) {
			return p.addr()
		}
	}
	return f.procs[0].addr()
}

// blockedBetween reports whether the desired fault state severs the pair
// in either direction.
func (f *fleet) blockedBetween(i, j int) bool {
	return f.procs[i].faults.blocks(f.procs[j].addr()) ||
		f.procs[j].faults.blocks(f.procs[i].addr())
}

// partitionActive reports whether any desired block exists anywhere.
func (f *fleet) partitionActive() bool {
	for _, p := range f.procs {
		p.faults.mu.Lock()
		n := len(p.faults.blocked)
		p.faults.mu.Unlock()
		if n > 0 {
			return true
		}
	}
	return false
}

// supervise is the per-process supervisor loop: wait for exit, classify,
// back off, relaunch on the pinned ports with the same seed, replay the
// desired fault state, repeat. It gives up on a crash loop.
func (f *fleet) supervise(p *proc) {
	defer f.wg.Done()
	backoff := 100 * time.Millisecond
	const backoffMax = 3 * time.Second
	for {
		p.mu.Lock()
		cmd := p.cmd
		p.mu.Unlock()
		err := cmd.Wait()
		if f.stopping() {
			p.setState(stateStopped)
			return
		}
		if p.noteCrash(f.cfg.CrashLoopWindow, f.cfg.CrashLoopMax) {
			p.setState(stateCrashLoop)
			f.smu.Lock()
			f.crashLoop = append(f.crashLoop, p.name)
			f.smu.Unlock()
			f.note("%s crash-looped; supervisor gave up", p.name)
			return
		}
		p.setState(stateDown)
		f.note("%s exited (%v); restarting", p.name, err)

		for {
			timer := time.NewTimer(backoff)
			select {
			case <-f.done:
				timer.Stop()
				p.setState(stateStopped)
				return
			case <-timer.C:
			}
			spec := f.launchSpec(p, f.liveBootstrap(p.idx))
			// Relaunch binds the SAME ports; the old process image is gone
			// so the address is free modulo TIME_WAIT, which SO_REUSEADDR
			// (Go's listener default) tolerates.
			spec.listen = p.addr()
			spec.control = p.control()
			if err := p.launch(spec, f.done); err != nil {
				f.note("%s relaunch: %v", p.name, err)
				if backoff *= 2; backoff > backoffMax {
					backoff = backoffMax
				}
				if f.stopping() {
					p.setState(stateStopped)
					return
				}
				continue
			}
			backoff = 100 * time.Millisecond
			p.faults.replay()
			break
		}
	}
}

// launchSpec builds the launch parameters for one process. The epoch is
// the restart counter: a relaunched process publishes under a fresh
// incarnation so its restarted sequence numbers cannot collide with (and be
// dedup-swallowed as) its pre-crash message IDs.
func (f *fleet) launchSpec(p *proc, join string) launchSpec {
	p.mu.Lock()
	epoch := p.restarts
	p.mu.Unlock()
	spec := launchSpec{
		bin:      f.cfg.NodeBin,
		listen:   f.cfg.Host + ":0",
		control:  f.cfg.Host + ":0",
		join:     join,
		topics:   f.cfg.Topics,
		interval: f.cfg.GossipInterval,
		fanout:   f.cfg.Fanout,
		seed:     p.seed,
		epoch:    epoch,
		logPath:  logPath(f.cfg.LogDir, p.name),
		timeout:  30 * time.Second,
	}
	if f.cfg.Metrics {
		spec.metrics = f.cfg.Host + ":0"
	}
	return spec
}

// launchAll starts the whole fleet: process 0 first (the bootstrap), the
// rest concurrently against it.
func (f *fleet) launchAll(ctx context.Context) error {
	for i := 0; i < f.cfg.N; i++ {
		p := &proc{idx: i, name: fmt.Sprintf("node-%03d", i), seed: f.cfg.Seed + int64(i)}
		p.faults = newRemoteFaults(f, p)
		f.procs = append(f.procs, p)
	}
	if err := f.procs[0].launch(f.launchSpec(f.procs[0], ""), f.done); err != nil {
		return err
	}
	join := f.procs[0].addr()

	// Bounded launch concurrency: hundreds of simultaneous exec+join storms
	// would contend on the bootstrap; 16 at a time keeps the ramp smooth.
	// Each launch observes ctx (fail fast on cancellation) and f.done (the
	// fleet's own shutdown) inside proc.launch.
	return runner.Map(16, len(f.procs)-1, nil, func(i int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		p := f.procs[i+1]
		return p.launch(f.launchSpec(p, join), f.done)
	})
}

// startSupervisors hands every launched process to its supervisor loop.
func (f *fleet) startSupervisors() {
	f.supervised = true
	for _, p := range f.procs {
		f.wg.Add(1)
		go f.supervise(p)
	}
}

// shutdown quits every process (best effort), force-kills stragglers and
// waits for the supervisors to drain. Safe to call at any point after
// launchAll, including on early-exit error paths before supervision began.
func (f *fleet) shutdown() {
	f.stop()
	for _, p := range f.procs {
		if st, _ := p.snapshot(); st != stateUp {
			continue
		}
		if c, err := DialControl(p.control(), 2*time.Second); err == nil {
			c.Quit()
			c.Close()
		}
	}
	// Give clean quits a moment (the supervisors observe f.done, reap the
	// exit and stop restarting), then kill whatever is left.
	if f.supervised {
		deadline := time.Now().Add(3 * time.Second)
		for _, p := range f.procs {
			for time.Now().Before(deadline) {
				if st, _ := p.snapshot(); st == stateStopped || st == stateCrashLoop {
					break
				}
				time.Sleep(50 * time.Millisecond)
			}
		}
	}
	for _, p := range f.procs {
		p.kill()
	}
	if !f.supervised {
		// No supervisor owns cmd.Wait yet; reap here to avoid zombies.
		for _, p := range f.procs {
			p.mu.Lock()
			cmd := p.cmd
			p.mu.Unlock()
			if cmd != nil {
				cmd.Wait()
			}
		}
	}
	f.wg.Wait()
}
