package soak

// Pure unit tests for the schedule-derived completeness gate: no sockets,
// no processes, just the projection of a scenario timeline onto gating
// windows.

import (
	"testing"
	"time"

	"ringcast/internal/scenario"
)

func TestGatePlanWindows(t *testing.T) {
	cfg := Config{
		N:       4,
		NodeBin: "unused",
		Topics:  []string{"beta", "alpha"}, // withDefaults sorts → alpha first
		Scenario: scenario.Scenario{
			Name: "gate-plan",
			Events: []scenario.Event{
				{Kind: scenario.KindLoss, At: 6, Rate: 0.3},
				{Kind: scenario.KindPartition, At: 1, Groups: 2},
				{Kind: scenario.KindHeal, At: 3},
				{Kind: scenario.KindLoss, At: 8, Rate: 0},
				{Kind: scenario.KindFlashCrowd, At: 2}, // network phase: ignored
			},
		},
		StepInterval: time.Second,
		Guard:        100 * time.Millisecond,
	}
	cfg, err := cfg.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Topics[0] != "alpha" {
		t.Fatalf("withDefaults did not sort topics: %v", cfg.Topics)
	}
	start := time.Unix(1000, 0)
	p := newGatePlan(cfg, start)

	if p.arcTopic != "alpha" {
		t.Errorf("arcTopic = %q", p.arcTopic)
	}
	if len(p.fires) != 4 {
		t.Errorf("fires = %d, want 4 (flash crowd excluded)", len(p.fires))
	}
	if len(p.parts) != 1 || !p.parts[0].from.Equal(start.Add(1*time.Second)) || !p.parts[0].to.Equal(start.Add(3*time.Second)) {
		t.Errorf("partition spans = %+v", p.parts)
	}
	if len(p.loss) != 1 || !p.loss[0].from.Equal(start.Add(6*time.Second)) || !p.loss[0].to.Equal(start.Add(8*time.Second)) {
		t.Errorf("loss spans = %+v", p.loss)
	}

	at := func(ms int) time.Time { return start.Add(time.Duration(ms) * time.Millisecond) }
	cases := []struct {
		name  string
		topic string
		t     time.Time
		want  bool
	}{
		{"pre-scenario calm", "alpha", at(500), true},
		{"near partition fire", "alpha", at(950), false},
		{"arc topic mid-partition", "alpha", at(2000), true},
		{"secondary topic mid-partition", "beta", at(2000), false},
		{"secondary topic after heal+guard", "beta", at(3500), true},
		{"inside loss window (any topic)", "alpha", at(7000), false},
		{"after loss cleared", "beta", at(9500), true},
		{"near heal fire", "alpha", at(3050), false},
	}
	for _, tc := range cases {
		if got := p.gate(tc.topic, tc.t); got != tc.want {
			t.Errorf("%s: gate(%q, +%s) = %v, want %v", tc.name, tc.topic, tc.t.Sub(start), got, tc.want)
		}
	}
}

func TestGatePlanOpenEndedPartition(t *testing.T) {
	cfg := Config{
		N:       2,
		NodeBin: "unused",
		Scenario: scenario.Scenario{
			Name:   "never-heals",
			Events: []scenario.Event{{Kind: scenario.KindPartition, At: 1, Groups: 2}},
		},
		StepInterval: time.Second,
		Guard:        100 * time.Millisecond,
	}
	cfg, err := cfg.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	start := time.Unix(2000, 0)
	p := newGatePlan(cfg, start)
	// Plain nodes use the pseudo-topic, which IS the arc topic, so the
	// partition windows never apply; only the fire guard does.
	if !p.gate(plainTopic, start.Add(10*time.Second)) {
		t.Error("arc topic gated by open partition")
	}
	// A hypothetical second topic stays ungated forever: the span never
	// closes.
	if p.gate("other", start.Add(time.Hour)) {
		t.Error("secondary topic gated inside open-ended partition")
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := (Config{N: 1, NodeBin: "x"}).withDefaults(); err == nil {
		t.Error("N=1 accepted")
	}
	if _, err := (Config{N: 2}).withDefaults(); err == nil {
		t.Error("missing NodeBin accepted")
	}
	cfg, err := (Config{N: 2, NodeBin: "x"}).withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Duration != DefaultDuration || cfg.PublishRate != DefaultPublishRate || cfg.Host != "127.0.0.1" {
		t.Errorf("defaults not applied: %+v", cfg)
	}
	if got := cfg.topics(); len(got) != 1 || got[0] != plainTopic {
		t.Errorf("topics() = %v", got)
	}
}
