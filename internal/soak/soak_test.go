package soak

// Process-level tests: these build the real ringcast-node binary once and
// exercise the harness against live subprocesses. They are skipped under
// -short (the in-process agent, gate and config tests still run there).
//
// TestSoakPartitionHeal is the PR's acceptance test: N nodes (default 16,
// RINGCAST_SOAK_N overrides — CI runs 32, the local gate 64), a
// partition-heal-arckill timeline, one deliberately wedged consumer, and a
// report that must show zero missing gated pairs, every injected crash
// restarted, and the lag detector flagging exactly the wedged peer.

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"ringcast/internal/ident"
	"ringcast/internal/scenario"
	"ringcast/internal/wire"
)

// nodeBin is the shared ringcast-node binary path, built once in TestMain
// (empty under -short, where every user of it skips).
var nodeBin string

func TestMain(m *testing.M) {
	flag.Parse()
	code := func() int {
		if !testing.Short() {
			dir, err := os.MkdirTemp("", "soak-bin")
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			defer os.RemoveAll(dir)
			nodeBin, err = BuildNodeBin(dir)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
		}
		return m.Run()
	}()
	os.Exit(code)
}

// soakN returns the fleet size for the acceptance test.
func soakN(t *testing.T) int {
	t.Helper()
	if s := os.Getenv("RINGCAST_SOAK_N"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 4 {
			t.Fatalf("RINGCAST_SOAK_N=%q: need an integer >= 4", s)
		}
		return n
	}
	return 16
}

func TestSoakPartitionHeal(t *testing.T) {
	if testing.Short() {
		t.Skip("live soak needs subprocesses; skipped under -short")
	}
	n := soakN(t)
	cfg := Config{
		N:              n,
		Topics:         []string{"alpha", "beta"},
		NodeBin:        nodeBin,
		LogDir:         t.TempDir(),
		GossipInterval: 60 * time.Millisecond,
		StepInterval:   2 * time.Second,
		ProbeInterval:  400 * time.Millisecond,
		Duration:       12500 * time.Millisecond,
		Guard:          1200 * time.Millisecond,
		PublishRate:    25,
		LagWindow:      6,
		Seed:           11,
		WedgeAfter:     3500 * time.Millisecond,
		WedgeFor:       4500 * time.Millisecond,
		Scenario: scenario.Scenario{
			Name: "soak-partition-heal",
			Events: []scenario.Event{
				{Kind: scenario.KindPartition, At: 1, Groups: 2},
				{Kind: scenario.KindHeal, At: 3},
				{Kind: scenario.KindArcKill, At: 5, Fraction: 2.2 / float64(n), Start: ident.Nil},
			},
		},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	rep, err := Run(ctx, cfg)
	if err != nil {
		t.Fatalf("soak run: %v", err)
	}
	if path := os.Getenv("RINGCAST_SOAK_REPORT"); path != "" {
		if err := rep.WriteFile(path); err != nil {
			t.Errorf("write report: %v", err)
		}
	}
	t.Logf("published=%d gated_msgs=%d gated_pairs=%d delivered=%d missing=%d unverifiable=%d",
		rep.Published, rep.GatedMessages, rep.GatedPairs, rep.DeliveredPairs,
		rep.MissingPairs, rep.UnverifiablePairs)
	t.Logf("restarts=%d kills=%d lagging=%v wedged=%v p99=%.1fms msgs/sec=%.0f",
		rep.Restarts, rep.InjectedKills, rep.Lagging, rep.Wedged,
		rep.Latency.P99, rep.MsgsPerSec)
	for _, note := range rep.Notes {
		t.Logf("note: %s", note)
	}

	// Delivery completeness: every gated pair delivered.
	if rep.GatedPairs == 0 {
		t.Error("no gated pairs — the completeness verdict is vacuous")
	}
	if rep.MissingPairs != 0 {
		t.Errorf("%d missing gated pairs (completeness %.4f); sample: %v",
			rep.MissingPairs, rep.Completeness, rep.MissingSample)
	}
	if !rep.CompletenessOK {
		t.Error("report does not assert completeness")
	}
	// Supervision: the scenario injected crashes, and every one restarted.
	if rep.InjectedKills < 1 {
		t.Errorf("injected kills = %d, want >= 1", rep.InjectedKills)
	}
	if rep.Restarts < rep.InjectedKills {
		t.Errorf("restarts = %d < injected kills = %d", rep.Restarts, rep.InjectedKills)
	}
	if len(rep.CrashLoops) != 0 {
		t.Errorf("crash loops: %v", rep.CrashLoops)
	}
	// Lag detection: the wedged consumer was flagged.
	if len(rep.Wedged) != 1 {
		t.Fatalf("wedged = %v, want exactly one victim", rep.Wedged)
	}
	found := false
	for _, name := range rep.Lagging {
		if name == rep.Wedged[0] {
			found = true
		}
	}
	if !found {
		t.Errorf("lag detector missed the wedged peer %s (lagging: %v)", rep.Wedged[0], rep.Lagging)
	}
	// Throughput and latency actually measured.
	if rep.Latency.Samples == 0 {
		t.Error("no latency samples")
	}
	if rep.MsgsPerSec <= 0 {
		t.Error("msgs/sec not measured")
	}
}

// waitProc polls p until cond holds or the deadline passes.
func waitProc(t *testing.T, p *proc, d time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestSupervisorRestartsCrashedNode(t *testing.T) {
	if testing.Short() {
		t.Skip("live soak needs subprocesses; skipped under -short")
	}
	cfg, err := Config{
		N:              3,
		NodeBin:        nodeBin,
		LogDir:         t.TempDir(),
		GossipInterval: 60 * time.Millisecond,
		Seed:           7,
	}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	f := newFleet(cfg)
	defer f.shutdown()
	if err := f.launchAll(ctx); err != nil {
		t.Fatal(err)
	}
	if err := f.awaitMesh(ctx); err != nil {
		t.Fatal(err)
	}
	f.startSupervisors()

	victim := f.procs[2]
	victim.mu.Lock()
	oldPID, oldRing, oldCtl := victim.pid, victim.ringID, victim.controlAddr
	victim.mu.Unlock()
	victim.kill()

	waitProc(t, victim, 30*time.Second, func() bool {
		victim.mu.Lock()
		defer victim.mu.Unlock()
		return victim.restarts == 1 && victim.state == stateUp && victim.pid != oldPID
	}, "supervisor restart")
	victim.mu.Lock()
	newRing, newCtl := victim.ringID, victim.controlAddr
	victim.mu.Unlock()
	// Same seed, same pinned ports: the restarted process is the same ring
	// member, so the scenario driver's arc resolution stays valid.
	if newRing != oldRing {
		t.Errorf("ring ID changed across restart: %d -> %d", oldRing, newRing)
	}
	if newCtl != oldCtl {
		t.Errorf("control address changed across restart: %s -> %s", oldCtl, newCtl)
	}
	// The restarted node answers on the control surface.
	c, err := DialControl(newCtl, 5*time.Second)
	if err != nil {
		t.Fatalf("dial restarted node: %v", err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Errorf("ping restarted node: %v", err)
	}
}

func TestSupervisorDetectsCrashLoop(t *testing.T) {
	if testing.Short() {
		t.Skip("needs subprocesses; skipped under -short")
	}
	// A fake node that completes the ready handshake and then dies,
	// forever: the supervisor must give up after CrashLoopMax crashes
	// instead of restarting it until the heat death of CI.
	dir := t.TempDir()
	script := filepath.Join(dir, "crashy")
	body := "#!/bin/sh\necho \"SOAK ready addr=127.0.0.1:9 control=127.0.0.1:9 id=1 pid=$$\"\nsleep 0.05\nexit 1\n"
	if err := os.WriteFile(script, []byte(body), 0o755); err != nil {
		t.Fatal(err)
	}
	cfg, err := Config{
		N:               2,
		NodeBin:         script,
		CrashLoopMax:    3,
		CrashLoopWindow: 30 * time.Second,
	}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	f := newFleet(cfg)
	defer f.shutdown()
	if err := f.launchAll(context.Background()); err != nil {
		t.Fatal(err)
	}
	f.startSupervisors()

	for _, p := range f.procs {
		waitProc(t, p, 30*time.Second, func() bool {
			st, _ := p.snapshot()
			return st == stateCrashLoop
		}, "crash-loop verdict for "+p.name)
	}
	f.smu.Lock()
	loops := len(f.crashLoop)
	f.smu.Unlock()
	if loops != 2 {
		t.Errorf("crashLoop records = %d, want 2", loops)
	}
	for _, p := range f.procs {
		p.mu.Lock()
		crashes := len(p.crashes)
		p.mu.Unlock()
		if crashes < cfg.CrashLoopMax {
			t.Errorf("%s: %d crashes recorded, want >= %d", p.name, crashes, cfg.CrashLoopMax)
		}
	}
}

// TestRestartRepublishGatesWithFreshEpoch is the restart-identity
// regression: a supervised restart reuses the node's seed and ports, so
// its fresh publish counter would reproduce pre-crash message IDs and the
// survivors' dedup filters would swallow every post-restart publish. The
// incarnation epoch (-epoch, wired from the supervisor's restart count)
// separates the ID spaces: a republish after the crash must carry epoch 1
// and must reach the survivors' ledgers.
func TestRestartRepublishGatesWithFreshEpoch(t *testing.T) {
	if testing.Short() {
		t.Skip("live soak needs subprocesses; skipped under -short")
	}
	cfg, err := Config{
		N:              3,
		NodeBin:        nodeBin,
		LogDir:         t.TempDir(),
		GossipInterval: 60 * time.Millisecond,
		Seed:           11,
	}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	f := newFleet(cfg)
	defer f.shutdown()
	if err := f.launchAll(ctx); err != nil {
		t.Fatal(err)
	}
	if err := f.awaitMesh(ctx); err != nil {
		t.Fatal(err)
	}
	f.startSupervisors()

	victim := f.procs[0]
	pre, err := func() (PubAck, error) {
		c, err := DialControl(victim.control(), 5*time.Second)
		if err != nil {
			return PubAck{}, err
		}
		defer c.Close()
		return c.Publish(plainTopic, "before crash")
	}()
	if err != nil {
		t.Fatalf("pre-crash publish: %v", err)
	}
	if pre.Epoch != 0 {
		t.Fatalf("first incarnation published epoch %d, want 0", pre.Epoch)
	}

	victim.mu.Lock()
	oldPID := victim.pid
	victim.mu.Unlock()
	victim.kill()
	waitProc(t, victim, 30*time.Second, func() bool {
		victim.mu.Lock()
		defer victim.mu.Unlock()
		return victim.restarts == 1 && victim.state == stateUp && victim.pid != oldPID
	}, "supervisor restart")

	c, err := DialControl(victim.control(), 5*time.Second)
	if err != nil {
		t.Fatalf("dial restarted node: %v", err)
	}
	defer c.Close()
	post, err := c.Publish(plainTopic, "after crash")
	if err != nil {
		t.Fatalf("post-crash publish: %v", err)
	}
	if post.Epoch != 1 {
		t.Errorf("post-restart publish epoch = %d, want 1", post.Epoch)
	}
	if post.Origin != pre.Origin || post.Seq != pre.Seq {
		// The fresh counter restarting at the same sequence is the very
		// collision premise; if it ever changes, the epoch still protects
		// the ID space but this regression loses its bite.
		t.Logf("note: post-restart seq %d/%d no longer mirrors pre-crash %d/%d",
			post.Origin, post.Seq, pre.Origin, pre.Seq)
	}
	want := wire.MsgID{Origin: ident.ID(post.Origin), Epoch: post.Epoch, Seq: post.Seq}

	// Without the epoch the survivors' dedup would swallow this publish.
	// Poll both survivors until the post-restart ID is in their ledgers.
	for _, j := range []int{1, 2} {
		p := f.procs[j]
		waitProc(t, p, 30*time.Second, func() bool {
			sc, err := DialControl(p.control(), 2*time.Second)
			if err != nil {
				return false
			}
			defer sc.Close()
			entries, err := sc.Ledger(plainTopic)
			if err != nil {
				return false
			}
			for _, e := range entries {
				got := wire.MsgID{Origin: ident.ID(e.Origin), Epoch: e.Epoch, Seq: e.Seq}
				if got == want {
					return true
				}
			}
			return false
		}, fmt.Sprintf("post-restart publish in %s's ledger", p.name))
	}
}
