package soak

// Process supervision: launching ringcast-node processes, parsing their
// ready handshake, restarting them on crash with exponential backoff, and
// detecting crash loops. A restarted process relaunches on the SAME listen
// and control ports with the SAME -seed, so it rejoins the ring under its
// original identifier and the scenario driver's arc resolution stays valid
// across restarts — the deterministic-identity half of an otherwise
// wall-clock, real-socket harness.

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"
)

// procState is one supervised process's lifecycle phase.
type procState int

const (
	// stateStarting covers launch until the ready handshake.
	stateStarting procState = iota
	// stateUp means the ready handshake completed and the node serves.
	stateUp
	// stateDown means the process exited and a restart is pending.
	stateDown
	// stateCrashLoop means the supervisor gave up after repeated crashes.
	stateCrashLoop
	// stateStopped means the fleet is shutting down deliberately.
	stateStopped
)

// String renders the state for reports and errors.
func (s procState) String() string {
	switch s {
	case stateStarting:
		return "starting"
	case stateUp:
		return "up"
	case stateDown:
		return "down"
	case stateCrashLoop:
		return "crashloop"
	case stateStopped:
		return "stopped"
	}
	return "unknown"
}

// readyInfo is the parsed SOAK ready handshake line.
type readyInfo struct {
	addr    string
	control string
	metrics string // /metrics listen address; empty when not serving
	id      uint64
	pid     int
}

// parseReady recognizes the "SOAK ready addr=... control=... id=... pid=..."
// handshake ringcast-node prints once its control surface serves. A node
// launched with -metrics appends "metrics=<addr>"; older nodes omit it, so
// the field stays optional.
func parseReady(line string) (readyInfo, bool) {
	if !strings.HasPrefix(line, "SOAK ready ") {
		return readyInfo{}, false
	}
	var ri readyInfo
	for _, kv := range strings.Fields(line[len("SOAK ready "):]) {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			continue
		}
		switch k {
		case "addr":
			ri.addr = v
		case "control":
			ri.control = v
		case "metrics":
			ri.metrics = v
		case "id":
			ri.id, _ = strconv.ParseUint(v, 10, 64)
		case "pid":
			ri.pid, _ = strconv.Atoi(v)
		}
	}
	return ri, ri.addr != "" && ri.control != ""
}

// proc is one supervised ringcast-node process.
type proc struct {
	idx  int
	name string
	seed int64

	faults *remoteFaults

	mu          sync.Mutex
	state       procState
	since       time.Time // last state transition
	listenAddr  string    // pinned after the first launch
	controlAddr string
	metricsAddr string // re-read on every launch (ephemeral port)
	ringID      uint64
	pid         int
	cmd         *exec.Cmd
	restarts    int
	crashes     []time.Time // crash instants inside the crash-loop window
	everCrashed bool
	firstCrash  time.Time
}

// snapshot returns the mutable fields the gate and probe logic reads.
func (p *proc) snapshot() (state procState, since time.Time) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.state, p.since
}

// setState stamps a lifecycle transition.
func (p *proc) setState(s procState) {
	p.mu.Lock()
	p.state = s
	p.since = time.Now()
	p.mu.Unlock()
}

// control returns the pinned control address.
func (p *proc) control() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.controlAddr
}

// addr returns the pinned transport address.
func (p *proc) addr() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.listenAddr
}

// metrics returns the current /metrics address ("" when not serving).
func (p *proc) metrics() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.metricsAddr
}

// kill force-stops the current process image (the supervisor restarts it).
func (p *proc) kill() {
	p.mu.Lock()
	cmd := p.cmd
	p.mu.Unlock()
	if cmd != nil && cmd.Process != nil {
		cmd.Process.Kill()
	}
}

// crashed reports whether the process ever crashed.
func (p *proc) crashed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.everCrashed
}

// noteCrash records a crash instant and reports whether the process is
// crash-looping: more than max crashes inside window.
func (p *proc) noteCrash(window time.Duration, max int) bool {
	now := time.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	p.restarts++
	if !p.everCrashed {
		p.everCrashed = true
		p.firstCrash = now
	}
	keep := p.crashes[:0]
	for _, t := range p.crashes {
		if now.Sub(t) <= window {
			keep = append(keep, t)
		}
	}
	p.crashes = append(keep, now)
	return len(p.crashes) >= max
}

// launchSpec carries the per-launch parameters the fleet computes.
type launchSpec struct {
	bin      string
	listen   string
	control  string
	metrics  string // /metrics listen address; empty = off
	join     string
	topics   []string
	interval time.Duration
	fanout   int
	seed     int64
	epoch    int    // incarnation counter; >0 only on supervised restarts
	logPath  string // empty = discard
	timeout  time.Duration
}

// launch starts one ringcast-node process and waits for its ready
// handshake. On success the proc's addresses, ring ID and pid are pinned
// and a drain goroutine keeps copying the process's output (to the log
// file, when configured) until the process exits.
func (p *proc) launch(spec launchSpec, done <-chan struct{}) error {
	args := []string{
		"-listen", spec.listen,
		"-control", spec.control,
		"-interval", spec.interval.String(),
		"-fanout", strconv.Itoa(spec.fanout),
		"-seed", strconv.FormatInt(spec.seed, 10),
		"-status", "0",
	}
	if spec.epoch > 0 {
		args = append(args, "-epoch", strconv.Itoa(spec.epoch))
	}
	if spec.metrics != "" {
		args = append(args, "-metrics", spec.metrics)
	}
	if len(spec.topics) > 0 && !(len(spec.topics) == 1 && spec.topics[0] == plainTopic) {
		args = append(args, "-topics", strings.Join(spec.topics, ","))
	}
	if spec.join != "" {
		args = append(args, "-join", spec.join)
	}
	cmd := exec.Command(spec.bin, args...)
	var logW io.WriteCloser
	if spec.logPath != "" {
		f, err := os.OpenFile(spec.logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("soak: open log %s: %w", spec.logPath, err)
		}
		logW = f
		cmd.Stderr = f
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		if logW != nil {
			logW.Close()
		}
		return err
	}
	if err := cmd.Start(); err != nil {
		if logW != nil {
			logW.Close()
		}
		return fmt.Errorf("soak: start %s: %w", p.name, err)
	}

	// The drain goroutine owns stdout until process exit: it surfaces the
	// ready handshake once, then keeps the pipe flowing (a full pipe would
	// wedge the node) and mirrors lines into the log. It exits at EOF when
	// the process dies, so it cannot leak past the process it serves.
	ready := make(chan readyInfo, 1)
	eof := make(chan struct{})
	go func() {
		defer close(eof)
		sc := bufio.NewScanner(stdout)
		sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
		for sc.Scan() {
			line := sc.Text()
			if logW != nil {
				fmt.Fprintln(logW, line)
			}
			if ri, ok := parseReady(line); ok {
				select {
				case ready <- ri:
				default:
				}
			}
		}
		if logW != nil {
			logW.Close()
		}
	}()

	adopt := func(ri readyInfo) {
		p.mu.Lock()
		p.cmd = cmd
		p.listenAddr = ri.addr
		p.controlAddr = ri.control
		p.metricsAddr = ri.metrics
		p.ringID = ri.id
		p.pid = ri.pid
		p.state = stateUp
		p.since = time.Now()
		p.mu.Unlock()
	}
	timer := time.NewTimer(spec.timeout)
	defer timer.Stop()
	select {
	case ri := <-ready:
		adopt(ri)
		return nil
	case <-eof:
		// The process exited (or closed stdout) before — or racing with —
		// the handshake; the ready send wins if it happened.
		select {
		case ri := <-ready:
			adopt(ri)
			return nil
		default:
		}
		cmd.Wait()
		return fmt.Errorf("soak: %s: exited before the ready handshake", p.name)
	case <-timer.C:
		cmd.Process.Kill()
		cmd.Wait()
		return fmt.Errorf("soak: %s: no ready handshake within %s", p.name, spec.timeout)
	case <-done:
		cmd.Process.Kill()
		cmd.Wait()
		return fmt.Errorf("soak: %s: fleet shut down during launch", p.name)
	}
}

// logPath names the process's log file inside dir ("" stays "").
func logPath(dir, name string) string {
	if dir == "" {
		return ""
	}
	return filepath.Join(dir, name+".log")
}
