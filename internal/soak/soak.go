// Package soak is the distributed live soak harness: it launches a fleet
// of real ringcast-node processes, bootstraps them onto one mesh, drives a
// scenario timeline through each process's fault-injection surface, keeps a
// publish load running across partitions and heals, supervises crashes with
// restart-on-failure, and verifies delivery completeness from per-node
// ledgers. Nothing here is deterministic — the fleet runs on real sockets
// and real clocks — but every node is launched with an explicit -seed so a
// restarted process rejoins the ring under the same identifier, and the
// scenario resolves its arcs over those seeded ring IDs exactly as the
// hop-count simulators do. The completeness gate follows the paper's scope:
// dissemination is one-shot, so a message is only expected at nodes that
// were reachable from the origin when it was published (Section 4's
// connectivity-scoped guarantee); messages published inside a fault
// transition window are measured but not gated.
package soak

import (
	"errors"
	"sort"
	"time"

	"ringcast/internal/scenario"
)

// Defaults for Config fields left zero. Exported so the CLI and tests can
// print and reason about the effective values.
const (
	// DefaultGossipInterval is the per-node gossip cycle handed to
	// ringcast-node via -interval.
	DefaultGossipInterval = 100 * time.Millisecond
	// DefaultStepInterval is the wall-clock length of one scenario step.
	DefaultStepInterval = 2 * time.Second
	// DefaultProbeInterval is the supervisor's health-probe period.
	DefaultProbeInterval = 500 * time.Millisecond
	// DefaultLagWindow is how many consecutive zero-progress probes flag a
	// peer as lagging.
	DefaultLagWindow = 6
	// DefaultPublishRate is the sustained fleet-wide publish rate per second.
	DefaultPublishRate = 25
	// DefaultDuration is the publish phase length.
	DefaultDuration = 12 * time.Second
	// DefaultGuard is the transition guard: publishes within this window of
	// a scenario event or a membership change are not completeness-gated.
	DefaultGuard = 1500 * time.Millisecond
	// DefaultReadyTimeout bounds the initial mesh-formation barrier.
	DefaultReadyTimeout = 90 * time.Second
	// DefaultDrainTimeout bounds the post-publish settle phase.
	DefaultDrainTimeout = 20 * time.Second
	// DefaultCrashLoopMax is the number of crashes inside CrashLoopWindow
	// after which the supervisor gives up on a process.
	DefaultCrashLoopMax = 5
	// DefaultCrashLoopWindow is the sliding window for crash-loop detection.
	DefaultCrashLoopWindow = 30 * time.Second
)

// Config parameterizes one soak run.
type Config struct {
	// N is the fleet size (number of ringcast-node processes).
	N int
	// Topics lists the pub/sub topics every node subscribes to. Empty means
	// plain single-overlay nodes (the pseudo-topic "-").
	Topics []string
	// Scenario is the fault timeline; its step counter advances once per
	// StepInterval. A zero-value scenario runs fault-free.
	Scenario scenario.Scenario
	// NodeBin is the path to a built ringcast-node binary.
	NodeBin string
	// Host is the interface the fleet binds; defaults to 127.0.0.1. A
	// multi-machine plan substitutes addressable hosts here.
	Host string
	// LogDir, when non-empty, receives one stdout/stderr log per process.
	LogDir string

	// GossipInterval, StepInterval, ProbeInterval, Duration, Guard,
	// ReadyTimeout and DrainTimeout default as documented on the package
	// constants when zero.
	GossipInterval time.Duration
	StepInterval   time.Duration
	ProbeInterval  time.Duration
	Duration       time.Duration
	Guard          time.Duration
	ReadyTimeout   time.Duration
	DrainTimeout   time.Duration

	// PublishRate is messages per second across the whole fleet.
	PublishRate int
	// LagWindow is the number of consecutive zero-progress probes (while
	// the fleet kept publishing) that flag a peer as lagging.
	LagWindow int
	// CrashLoopMax crashes inside CrashLoopWindow abandon the process.
	CrashLoopMax    int
	CrashLoopWindow time.Duration

	// Fanout is the dissemination fanout F handed to every node.
	Fanout int
	// Seed offsets every node's deterministic identity seed, so two runs
	// with the same Seed build the same ring.
	Seed int64

	// WedgeAfter, when positive, wedges one live process's delivery path
	// (a deliberately stuck consumer) that long into the publish phase, and
	// unwedges it WedgeFor later — the lag detector must flag it.
	WedgeAfter time.Duration
	WedgeFor   time.Duration

	// Metrics, when true, launches every node with a /metrics endpoint
	// (Prometheus text format) on an ephemeral port and has the harness
	// scrape node 0 once per second, recording the samples in the report —
	// the observability trail that makes a mid-run re-tune visible.
	Metrics bool
}

// withDefaults fills zero fields and validates the result.
func (c Config) withDefaults() (Config, error) {
	if c.N < 2 {
		return c, errors.New("soak: need at least 2 nodes")
	}
	if c.NodeBin == "" {
		return c, errors.New("soak: NodeBin is required")
	}
	if c.Host == "" {
		c.Host = "127.0.0.1"
	}
	if c.GossipInterval <= 0 {
		c.GossipInterval = DefaultGossipInterval
	}
	if c.StepInterval <= 0 {
		c.StepInterval = DefaultStepInterval
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = DefaultProbeInterval
	}
	if c.Duration <= 0 {
		c.Duration = DefaultDuration
	}
	if c.Guard <= 0 {
		c.Guard = DefaultGuard
	}
	if c.ReadyTimeout <= 0 {
		c.ReadyTimeout = DefaultReadyTimeout
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = DefaultDrainTimeout
	}
	if c.PublishRate <= 0 {
		c.PublishRate = DefaultPublishRate
	}
	if c.LagWindow <= 0 {
		c.LagWindow = DefaultLagWindow
	}
	if c.CrashLoopMax <= 0 {
		c.CrashLoopMax = DefaultCrashLoopMax
	}
	if c.CrashLoopWindow <= 0 {
		c.CrashLoopWindow = DefaultCrashLoopWindow
	}
	if c.Fanout <= 0 {
		c.Fanout = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.WedgeAfter > 0 && c.WedgeFor <= 0 {
		c.WedgeFor = 4 * time.Second
	}
	// The first topic in sorted order anchors the ring IDs the scenario
	// resolves arcs over (ringcast-node sorts its -topics the same way),
	// so pin the order here once.
	c.Topics = append([]string(nil), c.Topics...)
	sort.Strings(c.Topics)
	return c, nil
}

// topics returns the effective topic list: the configured topics, or the
// plain-node pseudo-topic.
func (c Config) topics() []string {
	if len(c.Topics) == 0 {
		return []string{plainTopic}
	}
	return c.Topics
}

// plainTopic is the pseudo-topic name a plain (non-pubsub) node reports.
const plainTopic = "-"
