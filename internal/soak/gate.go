package soak

// The completeness gate. Dissemination in RingCast is one-shot: a message
// reaches whoever is reachable from the origin while its copies are in
// flight, and nothing redelivers it later (the paper's completeness
// guarantee is explicitly scoped by connectivity). The gate therefore
// decides AT PUBLISH TIME which nodes a message must reach, and excludes
// publishes whose outcome is a race with a fault transition:
//
//   - within the guard window of any scheduled scenario event,
//   - while a loss rate is programmed (probabilistic by definition),
//   - on secondary topics while a partition is active: arcs are contiguous
//     in the FIRST topic's ring, so only that overlay keeps its intra-arc
//     ring path; the other overlays' rings are scattered by an
//     address-based split and their completeness is probabilistic,
//   - to or from nodes that recently restarted, were recently wedged or
//     unwedged, or are currently wedged or partitioned away.
//
// Ungated publishes still count toward throughput; they are just not part
// of the delivery-completeness verdict.

import (
	"sort"
	"time"

	"ringcast/internal/scenario"
)

// window is a closed interval of wall-clock time; an open end is the zero
// time.
type window struct {
	from time.Time
	to   time.Time
}

func (w window) contains(t time.Time, pad time.Duration) bool {
	if t.Before(w.from.Add(-pad)) {
		return false
	}
	return w.to.IsZero() || !t.After(w.to.Add(pad))
}

// gatePlan is the schedule-derived gating rule, fixed once the publish
// phase starts (the scenario timeline is known upfront, so the plan needs
// no locking).
type gatePlan struct {
	guard    time.Duration
	arcTopic string
	// fires are the scheduled event instants.
	fires []time.Time
	// loss spans cover programmed loss (rate > 0) periods.
	loss []window
	// parts spans cover active partitions.
	parts []window
	// retune is the first set-param fire instant (zero when the timeline has
	// none); the report splits latency samples around it.
	retune time.Time
}

// newGatePlan projects the scenario timeline onto wall-clock instants:
// event At steps fire at start + At*step.
func newGatePlan(cfg Config, start time.Time) *gatePlan {
	p := &gatePlan{guard: cfg.Guard, arcTopic: cfg.topics()[0]}
	// Walk the dissemination events in the order the driver applies them
	// (stable by At), tracking which loss and partition spans are open.
	events := make([]scenario.Event, 0, len(cfg.Scenario.Events))
	for _, e := range cfg.Scenario.Events {
		if e.Kind == scenario.KindFlashCrowd || e.Kind == scenario.KindChurnRate {
			continue // network-phase kinds; the live driver ignores them too
		}
		events = append(events, e)
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	lossOpen, partOpen := -1, -1 // index of the open span, -1 = none
	for _, e := range events {
		at := start.Add(time.Duration(e.At) * cfg.StepInterval)
		p.fires = append(p.fires, at)
		switch e.Kind {
		case scenario.KindPartition:
			if partOpen < 0 {
				p.parts = append(p.parts, window{from: at})
				partOpen = len(p.parts) - 1
			}
		case scenario.KindHeal:
			if partOpen >= 0 {
				p.parts[partOpen].to = at
				partOpen = -1
			}
		case scenario.KindLoss:
			if e.Rate > 0 && lossOpen < 0 {
				p.loss = append(p.loss, window{from: at})
				lossOpen = len(p.loss) - 1
			} else if e.Rate == 0 && lossOpen >= 0 {
				p.loss[lossOpen].to = at
				lossOpen = -1
			}
		case scenario.KindSetParam:
			// A re-tune does not threaten completeness, but it lands in
			// fires like any event: the guard window keeps racing publishes
			// out of the latency split around the transition.
			if p.retune.IsZero() {
				p.retune = at
			}
		}
	}
	return p
}

// gate reports whether a publish on topic at instant t participates in
// the completeness verdict.
func (p *gatePlan) gate(topic string, t time.Time) bool {
	for _, fire := range p.fires {
		d := t.Sub(fire)
		if d < 0 {
			d = -d
		}
		if d <= p.guard {
			return false
		}
	}
	for _, w := range p.loss {
		if w.contains(t, p.guard) {
			return false
		}
	}
	if topic != p.arcTopic {
		for _, w := range p.parts {
			if w.contains(t, p.guard) {
				return false
			}
		}
	}
	return true
}

// setPlan installs the gate plan at publish-phase start.
func (f *fleet) setPlan(p *gatePlan) {
	f.gmu.Lock()
	f.plan = p
	f.gmu.Unlock()
}

// gatePublish decides whether a publish from origin on topic at instant t
// is gated, and if so, which procs must deliver it. The origin itself is
// always expected (a publish delivers locally).
func (f *fleet) gatePublish(origin int, topic string, t time.Time) (bool, []int) {
	f.gmu.Lock()
	plan := f.plan
	f.gmu.Unlock()
	if plan == nil || !plan.gate(topic, t) {
		return false, nil
	}
	// Restart survivors gate like everyone else: a relaunched process
	// publishes under a fresh incarnation epoch, so its restarted sequence
	// numbers cannot collide with pre-crash message IDs. Only the stability
	// guard (recent transitions) excludes an origin now.
	if !f.stableFor(origin, t, plan.guard) {
		return false, nil
	}
	expected := []int{origin}
	for j := range f.procs {
		if j == origin {
			continue
		}
		if !f.stableFor(j, t, plan.guard) {
			continue
		}
		if f.blockedBetween(origin, j) {
			continue
		}
		expected = append(expected, j)
	}
	return true, expected
}

// stableFor reports whether proc i has been up, unwedged and
// transition-free for at least guard before t.
func (f *fleet) stableFor(i int, t time.Time, guard time.Duration) bool {
	st, since := f.procs[i].snapshot()
	if st != stateUp || t.Sub(since) < guard {
		return false
	}
	wedged, wAt := f.wedgeState(i)
	if wedged {
		return false
	}
	if !wAt.IsZero() && t.Sub(wAt) < guard {
		return false
	}
	return true
}
