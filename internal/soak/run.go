package soak

// Run orchestration: launch, mesh barrier, supervised publish phase under
// scenario control, drain, ledger collection, report. Callable from go
// test at small N and from cmd/ringcast-soak at large N; the two differ
// only in Config.

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"ringcast/internal/ident"
	"ringcast/internal/scenario"
	"ringcast/internal/wire"
)

// Run executes one soak: it launches cfg.N ringcast-node processes,
// bootstraps them onto one mesh per topic, then runs the publish phase for
// cfg.Duration while the scenario timeline advances one step per
// StepInterval, the supervisor restarts crashed processes, and the prober
// watches for lagging peers. Afterwards it heals every fault, drains
// in-flight deliveries, collects the per-node delivery ledgers and builds
// the completeness report. The fleet is always torn down before Run
// returns.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	f := newFleet(cfg)
	defer f.shutdown()
	if err := f.launchAll(ctx); err != nil {
		return nil, err
	}
	if err := f.awaitMesh(ctx); err != nil {
		return nil, err
	}
	f.startSupervisors()

	var drv *scenario.Driver
	if cfg.Scenario.Name != "" && len(cfg.Scenario.Events) > 0 {
		members := make([]scenario.Member, 0, len(f.procs))
		for _, p := range f.procs {
			members = append(members, scenario.Member{
				Addr:   p.addr(),
				ID:     ident.ID(p.ringID),
				Faults: p.faults,
				Params: p.faults,
			})
		}
		drv, err = scenario.NewDriver(cfg.Scenario, members)
		if err != nil {
			return nil, err
		}
		drv.OnKill = func(m scenario.Member) { f.killByAddr(m.Addr) }
	}

	start := time.Now()
	f.setPlan(newGatePlan(cfg, start))
	phase, cancel := context.WithCancel(ctx)
	defer cancel()
	var pg sync.WaitGroup
	pg.Add(2)
	go func() { defer pg.Done(); f.probeLoop(phase) }()
	go func() { defer pg.Done(); f.publishLoop(phase) }()
	if drv != nil {
		pg.Add(1)
		go func() { defer pg.Done(); f.driveLoop(phase, drv) }()
	}
	if cfg.WedgeAfter > 0 {
		pg.Add(1)
		go func() { defer pg.Done(); f.wedgeLoop(phase) }()
	}
	if cfg.Metrics {
		pg.Add(1)
		go func() { defer pg.Done(); f.metricsLoop(phase) }()
	}

	phaseTimer := time.NewTimer(cfg.Duration)
	defer phaseTimer.Stop()
	select {
	case <-phaseTimer.C:
	case <-ctx.Done():
		cancel()
		pg.Wait()
		return nil, ctx.Err()
	}
	cancel()
	pg.Wait()
	elapsed := time.Since(start)

	f.drain(ctx)
	ledgers := f.collectLedgers()
	return f.buildReport(ledgers, elapsed), nil
}

// awaitMesh blocks until every process reports a formed ring on every
// topic AND the rings are globally consistent (each node's pred/succ match
// the sorted per-topic ID circle), or the ready timeout expires. The
// completeness gate leans on formed rings — the paper's guarantee rides on
// the ring path — so a fleet that cannot form one is a setup failure, not
// a soak verdict.
func (f *fleet) awaitMesh(ctx context.Context) error {
	n := len(f.procs)
	clients := make([]*Client, n)
	defer func() {
		for _, c := range clients {
			if c != nil {
				c.Close()
			}
		}
	}()
	deadline := time.Now().Add(f.cfg.ReadyTimeout)
	var lastErr error
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("soak: mesh did not form within %s (last: %v)", f.cfg.ReadyTimeout, lastErr)
		}
		statuses := make([]map[string]TopicStatus, n)
		ok := true
		for i, p := range f.procs {
			if clients[i] == nil {
				c, err := DialControl(p.control(), 2*time.Second)
				if err != nil {
					ok, lastErr = false, err
					break
				}
				clients[i] = c
			}
			st, err := clients[i].Status()
			if err != nil {
				clients[i].Close()
				clients[i] = nil
				ok, lastErr = false, err
				break
			}
			statuses[i] = st
		}
		if ok {
			lastErr = f.ringsConsistent(statuses)
			if lastErr == nil {
				return nil
			}
		}
		timer := time.NewTimer(250 * time.Millisecond)
		select {
		case <-ctx.Done():
			timer.Stop()
			return ctx.Err()
		case <-timer.C:
		}
	}
}

// ringsConsistent checks every topic's ring: all nodes present, and each
// node's pred/succ equal to its neighbors in the sorted ID circle.
func (f *fleet) ringsConsistent(statuses []map[string]TopicStatus) error {
	for _, topic := range f.topics {
		ids := make([]uint64, 0, len(statuses))
		for i, st := range statuses {
			ts, ok := st[topic]
			if !ok || !ts.Ring {
				return fmt.Errorf("%s: no ring on topic %s yet", f.procs[i].name, topic)
			}
			ids = append(ids, ts.ID)
		}
		sorted := append([]uint64(nil), ids...)
		sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
		pos := make(map[uint64]int, len(sorted))
		for i, id := range sorted {
			pos[id] = i
		}
		for i, st := range statuses {
			ts := st[topic]
			at := pos[ts.ID]
			wantPred := sorted[(at-1+len(sorted))%len(sorted)]
			wantSucc := sorted[(at+1)%len(sorted)]
			if ts.Pred != wantPred || ts.Succ != wantSucc {
				return fmt.Errorf("%s: ring on topic %s not yet global", f.procs[i].name, topic)
			}
		}
	}
	return nil
}

// publishLoop sustains the configured publish rate, round-robining topics
// and origins over the stable part of the fleet, and records each publish
// with its completeness expectation.
func (f *fleet) publishLoop(ctx context.Context) {
	n := len(f.procs)
	clients := make([]*Client, n)
	defer func() {
		for _, c := range clients {
			if c != nil {
				c.Close()
			}
		}
	}()
	tick := time.NewTicker(time.Second / time.Duration(f.cfg.PublishRate))
	defer tick.Stop()
	seq := 0
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		seq++
		topic := f.topics[seq%len(f.topics)]
		origin := f.pickOrigin(seq)
		if origin < 0 {
			f.notePubErr()
			continue
		}
		if clients[origin] == nil {
			c, err := DialControl(f.procs[origin].control(), 2*time.Second)
			if err != nil {
				f.notePubErr()
				continue
			}
			clients[origin] = c
		}
		ack, err := clients[origin].Publish(topic, "s"+strconv.Itoa(origin)+"-m"+strconv.Itoa(seq))
		if err != nil {
			clients[origin].Close()
			clients[origin] = nil
			f.notePubErr()
			continue
		}
		at := time.Unix(0, ack.T)
		gated, expected := f.gatePublish(origin, topic, at)
		f.recordPub(pubRecord{
			topic:    topic,
			id:       wire.MsgID{Origin: ident.ID(ack.Origin), Epoch: ack.Epoch, Seq: ack.Seq},
			origin:   origin,
			at:       ack.T,
			gated:    gated,
			expected: expected,
		})
	}
}

// pickOrigin round-robins over processes that are up, settled and not
// wedged; -1 when none qualify. Crash survivors are eligible origins: a
// restarted process publishes under a fresh incarnation epoch, so its
// restarted sequence counter cannot reproduce pre-crash message IDs and
// the fleet's dedup caches deliver its publishes like anyone else's.
func (f *fleet) pickOrigin(seq int) int {
	n := len(f.procs)
	now := time.Now()
	for k := 0; k < n; k++ {
		i := (seq + k) % n
		if f.stableFor(i, now, f.cfg.Guard) {
			return i
		}
	}
	return -1
}

// driveLoop advances the scenario one step per StepInterval, returning
// once the timeline is exhausted.
func (f *fleet) driveLoop(ctx context.Context, drv *scenario.Driver) {
	maxAt := 0
	for _, e := range f.cfg.Scenario.Events {
		if e.At > maxAt {
			maxAt = e.At
		}
	}
	drv.Advance(0)
	tick := time.NewTicker(f.cfg.StepInterval)
	defer tick.Stop()
	for step := 0; step < maxAt; {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			step++
			drv.Advance(step)
		}
	}
}

// wedgeLoop wedges one stable process WedgeAfter into the publish phase
// (simulating a stuck consumer) and unwedges it WedgeFor later. The drain
// phase unwedges again as a backstop, so an early phase end cannot leave a
// process wedged.
func (f *fleet) wedgeLoop(ctx context.Context) {
	arm := time.NewTimer(f.cfg.WedgeAfter)
	defer arm.Stop()
	select {
	case <-ctx.Done():
		return
	case <-arm.C:
	}
	victim := -1
	now := time.Now()
	for i := len(f.procs) - 1; i > 0; i-- {
		if !f.procs[i].crashed() && f.stableFor(i, now, f.cfg.Guard) {
			victim = i
			break
		}
	}
	if victim < 0 {
		f.note("wedge: no stable victim available")
		return
	}
	if !f.wedgeCmd(victim, true) {
		return
	}
	f.note("wedged %s for %s", f.procs[victim].name, f.cfg.WedgeFor)
	hold := time.NewTimer(f.cfg.WedgeFor)
	defer hold.Stop()
	select {
	case <-ctx.Done():
		// Drain unwedges; still record the transition now.
	case <-hold.C:
	}
	f.wedgeCmd(victim, false)
}

// wedgeCmd programs the wedge state on proc i's agent and mirrors it into
// the fleet's bookkeeping.
func (f *fleet) wedgeCmd(i int, wedge bool) bool {
	c, err := DialControl(f.procs[i].control(), 2*time.Second)
	if err != nil {
		f.note("wedge %s: %v", f.procs[i].name, err)
		return false
	}
	defer c.Close()
	if wedge {
		err = c.Wedge()
	} else {
		err = c.Unwedge()
	}
	if err != nil {
		f.note("wedge %s: %v", f.procs[i].name, err)
		return false
	}
	f.setWedged(i, wedge)
	return true
}

// drain ends the fault phase: unwedge everything, heal every partition,
// clear loss, then wait for the fleet-wide delivered count to go stable
// (or the drain timeout), so one-shot dissemination finishes before the
// ledgers are read.
func (f *fleet) drain(ctx context.Context) {
	f.smu.Lock()
	wedgedIdx := make([]int, 0, len(f.wedged))
	for i, w := range f.wedged {
		if w {
			wedgedIdx = append(wedgedIdx, i)
		}
	}
	f.smu.Unlock()
	sort.Ints(wedgedIdx)
	for _, i := range wedgedIdx {
		f.wedgeCmd(i, false)
	}
	for _, p := range f.procs {
		if st, _ := p.snapshot(); st == stateUp {
			p.faults.HealAll()
			p.faults.SetLoss(0)
		}
	}

	deadline := time.Now().Add(f.cfg.DrainTimeout)
	var lastSum int64 = -1
	stableSince := time.Now()
	for time.Now().Before(deadline) && ctx.Err() == nil {
		var sum int64
		for _, p := range f.procs {
			if st, _ := p.snapshot(); st != stateUp {
				continue
			}
			c, err := DialControl(p.control(), 2*time.Second)
			if err != nil {
				continue
			}
			if stats, err := c.Stats(); err == nil {
				sum += stats.Delivered
			}
			c.Close()
		}
		if sum != lastSum {
			lastSum = sum
			stableSince = time.Now()
		} else if time.Since(stableSince) > 1200*time.Millisecond {
			return
		}
		time.Sleep(300 * time.Millisecond)
	}
}

// collectLedgers fetches every up process's per-topic delivery ledger.
// Processes that are down or crash-looped yield no ledger; their pairs are
// classified unverifiable by the report builder.
func (f *fleet) collectLedgers() map[int]map[string]map[wire.MsgID]int64 {
	out := make(map[int]map[string]map[wire.MsgID]int64)
	for i, p := range f.procs {
		if st, _ := p.snapshot(); st != stateUp {
			f.note("ledger: %s is %s at collection; its pairs are unverifiable", p.name, st)
			continue
		}
		c, err := DialControl(p.control(), 10*time.Second)
		if err != nil {
			f.note("ledger: dial %s: %v", p.name, err)
			continue
		}
		byTopic := make(map[string]map[wire.MsgID]int64, len(f.topics))
		fetchOK := true
		for _, topic := range f.topics {
			entries, err := c.Ledger(topic)
			if err != nil {
				f.note("ledger: %s topic %s: %v", p.name, topic, err)
				fetchOK = false
				break
			}
			m := make(map[wire.MsgID]int64, len(entries))
			for _, e := range entries {
				m[wire.MsgID{Origin: ident.ID(e.Origin), Epoch: e.Epoch, Seq: e.Seq}] = e.T
			}
			byTopic[topic] = m
		}
		c.Close()
		if fetchOK {
			out[i] = byTopic
		}
	}
	return out
}
