package soak

// Control-protocol client. Each harness subsystem (prober, publisher,
// scenario adapter, supervisor) owns its own Client: the protocol is
// strictly request/response over one connection, so sharing a client
// between goroutines would need a mutex held across network IO — exactly
// what the repo's lockio contract forbids. Dial one per goroutine instead.

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"time"
)

// ctlResp is the single JSON response shape for every control command;
// unused fields are omitted on the wire.
type ctlResp struct {
	OK      bool                   `json:"ok"`
	Err     string                 `json:"err,omitempty"`
	ID      uint64                 `json:"id,omitempty"`
	Addr    string                 `json:"addr,omitempty"`
	Topics  []string               `json:"topics,omitempty"`
	PID     int                    `json:"pid,omitempty"`
	Status  map[string]TopicStatus `json:"status,omitempty"`
	Ack     *PubAck                `json:"ack,omitempty"`
	Stats   *AgentStats            `json:"stats,omitempty"`
	Entries []LedgerEntry          `json:"entries,omitempty"`
	Value   string                 `json:"value,omitempty"`
	Version uint64                 `json:"version,omitempty"`
}

// errResp builds a failure response.
func errResp(msg string) ctlResp { return ctlResp{Err: msg} }

// writeResp marshals one response line.
func writeResp(w io.Writer, r ctlResp) error {
	buf, err := json.Marshal(r)
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}

// lineReader reads newline-terminated protocol lines with a generous size
// cap (ledger responses for long soaks run to megabytes).
type lineReader struct{ r *bufio.Reader }

func newLineReader(r io.Reader) *lineReader {
	return &lineReader{r: bufio.NewReaderSize(r, 64<<10)}
}

func (l *lineReader) next() (string, error) {
	var sb strings.Builder
	for {
		chunk, err := l.r.ReadString('\n')
		sb.WriteString(chunk)
		if err != nil {
			return sb.String(), err
		}
		if strings.HasSuffix(chunk, "\n") {
			return sb.String(), nil
		}
	}
}

// Info is a node's identity snapshot, from the info command.
type Info struct {
	// ID is the ring identifier the scenario driver resolves arcs over.
	ID uint64
	// Addr is the node's transport address.
	Addr string
	// Topics lists the subscribed topics.
	Topics []string
	// PID is the process ID, for supervision cross-checks.
	PID int
}

// Client speaks the control protocol to one Agent. NOT safe for concurrent
// use — each goroutine dials its own.
type Client struct {
	conn    net.Conn
	rd      *lineReader
	timeout time.Duration
}

// DialControl connects to an agent's control address. timeout bounds the
// dial and every subsequent request/response round trip (0 means 5s).
func DialControl(addr string, timeout time.Duration) (*Client, error) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("soak: dial control %s: %w", addr, err)
	}
	return &Client{conn: conn, rd: newLineReader(conn), timeout: timeout}, nil
}

// Close closes the control connection.
func (c *Client) Close() error { return c.conn.Close() }

// do runs one request/response round trip under the client's deadline.
func (c *Client) do(cmd string) (*ctlResp, error) {
	if err := c.conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
		return nil, err
	}
	if _, err := io.WriteString(c.conn, cmd+"\n"); err != nil {
		return nil, fmt.Errorf("soak: control write: %w", err)
	}
	line, err := c.rd.next()
	if err != nil {
		return nil, fmt.Errorf("soak: control read: %w", err)
	}
	var r ctlResp
	if err := json.Unmarshal([]byte(line), &r); err != nil {
		return nil, fmt.Errorf("soak: control decode: %w", err)
	}
	if !r.OK {
		return nil, errors.New("soak: control: " + r.Err)
	}
	return &r, nil
}

// Ping checks liveness.
func (c *Client) Ping() error {
	_, err := c.do("ping")
	return err
}

// Info fetches the node's identity snapshot.
func (c *Client) Info() (Info, error) {
	r, err := c.do("info")
	if err != nil {
		return Info{}, err
	}
	return Info{ID: r.ID, Addr: r.Addr, Topics: r.Topics, PID: r.PID}, nil
}

// Status fetches every topic overlay's health.
func (c *Client) Status() (map[string]TopicStatus, error) {
	r, err := c.do("status")
	if err != nil {
		return nil, err
	}
	return r.Status, nil
}

// Publish originates body on topic from the remote node and returns the
// acknowledged message identity and publish timestamp. body must not
// contain newlines.
func (c *Client) Publish(topic, body string) (PubAck, error) {
	r, err := c.do("publish " + topic + " " + body)
	if err != nil {
		return PubAck{}, err
	}
	if r.Ack == nil {
		return PubAck{}, errors.New("soak: publish: no ack in response")
	}
	return *r.Ack, nil
}

// Stats fetches the node's counter snapshot.
func (c *Client) Stats() (AgentStats, error) {
	r, err := c.do("stats")
	if err != nil {
		return AgentStats{}, err
	}
	if r.Stats == nil {
		return AgentStats{}, errors.New("soak: stats: no payload in response")
	}
	return *r.Stats, nil
}

// Ledger fetches one topic's delivery ledger.
func (c *Client) Ledger(topic string) ([]LedgerEntry, error) {
	r, err := c.do("ledger " + topic)
	if err != nil {
		return nil, err
	}
	return r.Entries, nil
}

// Block black-holes frames from the remote node to the given addresses.
func (c *Client) Block(addrs ...string) error {
	_, err := c.do("block " + strings.Join(addrs, " "))
	return err
}

// Unblock restores connectivity to the given addresses.
func (c *Client) Unblock(addrs ...string) error {
	_, err := c.do("unblock " + strings.Join(addrs, " "))
	return err
}

// Heal removes every active partition on the remote node.
func (c *Client) Heal() error {
	_, err := c.do("heal")
	return err
}

// SetLoss programs the remote node's per-frame drop probability.
func (c *Client) SetLoss(rate float64) error {
	_, err := c.do("loss " + strconv.FormatFloat(rate, 'g', -1, 64))
	return err
}

// SetParam sets one config-engine key on the remote node. The value is
// validated remotely; a rejection comes back as an error and leaves the
// remote engine at its prior version.
func (c *Client) SetParam(key, value string) error {
	_, err := c.do("set " + key + " " + value)
	return err
}

// GetParam fetches one config-engine key's canonical value and the remote
// engine's current version.
func (c *Client) GetParam(key string) (string, uint64, error) {
	r, err := c.do("get " + key)
	if err != nil {
		return "", 0, err
	}
	return r.Value, r.Version, nil
}

// Wedge blocks the remote node's delivery path (a simulated stuck
// consumer) until Unwedge.
func (c *Client) Wedge() error {
	_, err := c.do("wedge")
	return err
}

// Unwedge releases a wedged delivery path.
func (c *Client) Unwedge() error {
	_, err := c.do("unwedge")
	return err
}

// Quit asks the remote node to shut down cleanly.
func (c *Client) Quit() error {
	_, err := c.do("quit")
	return err
}
