package soak

// The observability trail: when Config.Metrics is set, every node serves a
// Prometheus-text /metrics endpoint and the harness scrapes node 0 once per
// second during the publish phase. The scraped series land in the report,
// so a mid-run re-tune (a set-param step halving the gossip interval, say)
// is visible as a level shift in ringcast_config_gossip_interval_seconds
// next to the counters it affects.

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// MetricSample is one /metrics scrape: a timestamp, the scraped node's name
// and every ringcast_-prefixed series (keyed by name plus label signature).
type MetricSample struct {
	// T is the scrape instant in Unix milliseconds.
	T int64 `json:"t"`
	// Node names the scraped process.
	Node string `json:"node"`
	// Series maps "name{labels}" to the sampled value.
	Series map[string]float64 `json:"series"`
}

// scrapeMetrics fetches one node's /metrics endpoint and parses it.
func scrapeMetrics(addr string, timeout time.Duration) (map[string]float64, error) {
	client := &http.Client{Timeout: timeout}
	resp, err := client.Get("http://" + addr + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("soak: scrape %s: status %d", addr, resp.StatusCode)
	}
	return parseMetrics(string(body)), nil
}

// parseMetrics extracts every ringcast_-prefixed series from a Prometheus
// text exposition. Unparseable lines are skipped — the scraper is a trail,
// not a validator.
func parseMetrics(text string) map[string]float64 {
	out := make(map[string]float64)
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		name := line[:i]
		if !strings.HasPrefix(name, "ringcast_") {
			continue
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			continue
		}
		out[name] = v
	}
	return out
}

// metricsLoop scrapes node 0's /metrics once per second for the publish
// phase. Scrape failures are skipped silently: a restart window leaves the
// endpoint briefly dark, and the trail's value is the series around it.
func (f *fleet) metricsLoop(ctx context.Context) {
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		p := f.procs[0]
		if st, _ := p.snapshot(); st != stateUp {
			continue
		}
		addr := p.metrics()
		if addr == "" {
			continue
		}
		series, err := scrapeMetrics(addr, 2*time.Second)
		if err != nil {
			continue
		}
		f.mmu.Lock()
		f.metricsLog = append(f.metricsLog, MetricSample{
			T:      time.Now().UnixMilli(),
			Node:   p.name,
			Series: series,
		})
		f.mmu.Unlock()
	}
}
