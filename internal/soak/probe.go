package soak

// The health prober and lag detector. One goroutine owns one control
// client per process and polls its counter snapshot every ProbeInterval.
// A process that is nominally up but whose delivery progress stalls for
// LagWindow consecutive probes — while the fleet kept publishing — is
// flagged as lagging: the live analogue of the paper's failed-but-not-
// yet-evicted node, and the exact signature of a wedged consumer backing
// up the delivery pipeline.

import (
	"context"
	"time"
)

// probeLoop polls every process until the phase context ends.
func (f *fleet) probeLoop(ctx context.Context) {
	n := len(f.procs)
	clients := make([]*Client, n)
	defer func() {
		for _, c := range clients {
			if c != nil {
				c.Close()
			}
		}
	}()
	lastDelivered := make([]int64, n)
	for i := range lastDelivered {
		lastDelivered[i] = -1 // no baseline yet
	}
	zeroRuns := make([]int, n)
	// pubHist rings the publish counter across the lag window, so the
	// detector only fires when the fleet actually published enough during
	// the stalled probes to make "zero progress" meaningful.
	pubHist := make([]int, f.cfg.LagWindow+1)
	tick := time.NewTicker(f.cfg.ProbeInterval)
	defer tick.Stop()
	probe := 0
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		pubHist[probe%len(pubHist)] = f.pubCount()
		probe++
		for i, p := range f.procs {
			st, since := p.snapshot()
			if st != stateUp || time.Since(since) < f.cfg.ProbeInterval {
				// Down, restarting or too fresh: reset the baseline so a
				// restarted process (whose ledger restarts from zero) is
				// not misread as regressing.
				lastDelivered[i], zeroRuns[i] = -1, 0
				continue
			}
			if clients[i] == nil {
				c, err := DialControl(p.control(), f.cfg.ProbeInterval)
				if err != nil {
					zeroRuns[i]++ // unreachable counts as zero progress
					f.maybeFlagLag(i, zeroRuns[i], probe, pubHist, since)
					continue
				}
				clients[i] = c
			}
			stats, err := clients[i].Stats()
			if err != nil {
				clients[i].Close()
				clients[i] = nil
				zeroRuns[i]++
				f.maybeFlagLag(i, zeroRuns[i], probe, pubHist, since)
				continue
			}
			switch {
			case lastDelivered[i] < 0:
				zeroRuns[i] = 0
			case stats.Delivered > lastDelivered[i]:
				zeroRuns[i] = 0
			default:
				zeroRuns[i]++
			}
			lastDelivered[i] = stats.Delivered
			f.maybeFlagLag(i, zeroRuns[i], probe, pubHist, since)
		}
	}
}

// maybeFlagLag applies the lag rule for proc i: LagWindow consecutive
// zero-progress probes, at least one publish per probe across the window
// on average, and the process up since before the window started.
func (f *fleet) maybeFlagLag(i, zeroRun, probe int, pubHist []int, upSince time.Time) {
	w := f.cfg.LagWindow
	if zeroRun < w || probe <= w {
		return
	}
	windowSpan := time.Duration(w) * f.cfg.ProbeInterval
	if time.Since(upSince) < windowSpan {
		return
	}
	newest := pubHist[(probe-1)%len(pubHist)]
	oldest := pubHist[probe%len(pubHist)] // the slot about to be overwritten
	if newest-oldest < w {
		return
	}
	f.flagLag(i)
}
