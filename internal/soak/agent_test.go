package soak

// In-process round trip of the control protocol: one Agent with stub
// hooks, one Client per assertion group, no subprocesses. This is the
// race-detector's view of the agent (the process-level soak tests exercise
// it only inside child processes, outside the instrumented binary).

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ringcast/internal/ident"
	"ringcast/internal/node"
	"ringcast/internal/transport"
	"ringcast/internal/wire"
)

// stubHooks builds a hook set over recording stubs.
func stubHooks(t *testing.T) (Hooks, *atomic.Int32, *struct {
	mu    sync.Mutex
	topic string
	body  string
}) {
	t.Helper()
	quits := &atomic.Int32{}
	pub := &struct {
		mu    sync.Mutex
		topic string
		body  string
	}{}
	var seq atomic.Uint64
	// params is the stub config surface behind the SetParam/GetParam hooks.
	params := struct {
		mu      sync.Mutex
		vals    map[string]string
		version uint64
	}{vals: make(map[string]string)}
	fabric := transport.NewInMemNetwork()
	ep, err := fabric.Endpoint("agent-under-test")
	if err != nil {
		t.Fatal(err)
	}
	fi := transport.WrapFaults(ep, 1)
	t.Cleanup(func() { fi.Close() })
	return Hooks{
		ID:     func() ident.ID { return 42 },
		Addr:   func() string { return "10.0.0.1:7" },
		Topics: []string{"alpha", "beta"},
		Publish: func(topic string, body []byte) (wire.MsgID, error) {
			pub.mu.Lock()
			pub.topic, pub.body = topic, string(body)
			pub.mu.Unlock()
			return wire.MsgID{Origin: 42, Epoch: 7, Seq: seq.Add(1)}, nil
		},
		Status: func() map[string]TopicStatus {
			return map[string]TopicStatus{
				"alpha": {ID: 42, View: 5, Pred: 40, Succ: 44, Ring: true},
				"beta":  {ID: 43, View: 2},
			}
		},
		NodeStats:      func() node.Stats { return node.Stats{Delivered: 3, Forwarded: 9} },
		TransportStats: func() transport.Stats { return transport.Stats{FramesSent: 17} },
		Faults:         fi,
		SetParam: func(key, value string) error {
			if key != "gossip.interval" {
				return errUnknownKey
			}
			params.mu.Lock()
			params.vals[key] = value
			params.version++
			params.mu.Unlock()
			return nil
		},
		GetParam: func(key string) (string, uint64, error) {
			params.mu.Lock()
			defer params.mu.Unlock()
			v, ok := params.vals[key]
			if !ok {
				return "", 0, errUnknownKey
			}
			return v, params.version, nil
		},
		Quit: func() { quits.Add(1) },
	}, quits, pub
}

// errUnknownKey stands in for the config engine's unknown-key rejection in
// the stub hook set.
var errUnknownKey = errors.New("stub: unknown key")

func TestAgentControlRoundTrip(t *testing.T) {
	agent, err := NewAgent("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	hooks, quits, pub := stubHooks(t)
	agent.Start(hooks)

	c, err := DialControl(agent.Addr(), 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}
	info, err := c.Info()
	if err != nil {
		t.Fatalf("info: %v", err)
	}
	if info.ID != 42 || info.Addr != "10.0.0.1:7" || len(info.Topics) != 2 || info.PID == 0 {
		t.Errorf("info = %+v", info)
	}
	st, err := c.Status()
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	if !st["alpha"].Ring || st["alpha"].Succ != 44 || st["beta"].View != 2 {
		t.Errorf("status = %+v", st)
	}

	// Publish: the body is everything after the topic, spaces included.
	ack, err := c.Publish("alpha", "hello soak world")
	if err != nil {
		t.Fatalf("publish: %v", err)
	}
	if ack.Origin != 42 || ack.Epoch != 7 || ack.Seq != 1 || ack.T == 0 {
		t.Errorf("ack = %+v", ack)
	}
	pub.mu.Lock()
	gotTopic, gotBody := pub.topic, pub.body
	pub.mu.Unlock()
	if gotTopic != "alpha" || gotBody != "hello soak world" {
		t.Errorf("publish forwarded (%q, %q)", gotTopic, gotBody)
	}

	stats, err := c.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if stats.Node.Forwarded != 9 || stats.Transport.FramesSent != 17 || stats.Delivered != 0 || stats.Wedged {
		t.Errorf("stats = %+v", stats)
	}

	// Ledger: deliveries dedup by full message ID (epoch included) and
	// come back sorted origin, then epoch, then seq.
	agent.Deliver("alpha", wire.MsgID{Origin: 9, Seq: 2})
	agent.Deliver("alpha", wire.MsgID{Origin: 9, Seq: 1})
	agent.Deliver("alpha", wire.MsgID{Origin: 9, Seq: 2})           // duplicate
	agent.Deliver("alpha", wire.MsgID{Origin: 9, Epoch: 1, Seq: 1}) // restart incarnation
	agent.Deliver("beta", wire.MsgID{Origin: 5, Seq: 1})
	entries, err := c.Ledger("alpha")
	if err != nil {
		t.Fatalf("ledger: %v", err)
	}
	if len(entries) != 3 || entries[0].Seq != 1 || entries[1].Seq != 2 ||
		entries[2].Epoch != 1 || entries[2].Seq != 1 {
		t.Errorf("ledger entries = %+v", entries)
	}
	if stats, _ = c.Stats(); stats.Delivered != 4 {
		t.Errorf("delivered total = %d, want 4 (dedup)", stats.Delivered)
	}

	// Config verbs round-trip through the SetParam/GetParam hooks.
	if err := c.SetParam("gossip.interval", "50ms"); err != nil {
		t.Fatalf("set: %v", err)
	}
	v, ver, err := c.GetParam("gossip.interval")
	if err != nil || v != "50ms" || ver != 1 {
		t.Errorf("get = (%q, %d, %v), want (50ms, 1, nil)", v, ver, err)
	}
	if err := c.SetParam("no.such.key", "1"); err == nil {
		t.Error("set of unknown key succeeded")
	}
	if _, _, err := c.GetParam("no.such.key"); err == nil {
		t.Error("get of unknown key succeeded")
	}

	// Fault surface plumbed through.
	if err := c.Block("10.0.0.2:7", "10.0.0.3:7"); err != nil {
		t.Errorf("block: %v", err)
	}
	if err := c.Unblock("10.0.0.2:7"); err != nil {
		t.Errorf("unblock: %v", err)
	}
	if err := c.Heal(); err != nil {
		t.Errorf("heal: %v", err)
	}
	if err := c.SetLoss(0.25); err != nil {
		t.Errorf("loss: %v", err)
	}

	// Unknown commands and malformed publishes fail without killing the
	// connection.
	if _, err := c.do("bogus"); err == nil || !strings.Contains(err.Error(), "unknown command") {
		t.Errorf("bogus command returned %v", err)
	}
	if _, err := c.do("publish alpha"); err == nil {
		t.Error("publish without body succeeded")
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("ping after errors: %v", err)
	}

	if err := c.Quit(); err != nil {
		t.Fatalf("quit: %v", err)
	}
	if quits.Load() != 1 {
		t.Errorf("quit hook ran %d times", quits.Load())
	}
}

func TestAgentWedgeBlocksDeliver(t *testing.T) {
	agent, err := NewAgent("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()
	hooks, _, _ := stubHooks(t)
	agent.Start(hooks)
	c, err := DialControl(agent.Addr(), 3*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Wedge(); err != nil {
		t.Fatal(err)
	}
	recorded := make(chan struct{})
	go func() {
		agent.Deliver("alpha", wire.MsgID{Origin: 1, Seq: 1})
		close(recorded)
	}()
	select {
	case <-recorded:
		t.Fatal("Deliver completed while wedged")
	case <-time.After(150 * time.Millisecond):
	}
	if stats, err := c.Stats(); err != nil || !stats.Wedged || stats.Delivered != 0 {
		t.Errorf("wedged stats = %+v (err %v)", stats, err)
	}

	if err := c.Unwedge(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-recorded:
	case <-time.After(5 * time.Second):
		t.Fatal("Deliver still blocked after unwedge")
	}
	if stats, err := c.Stats(); err != nil || stats.Wedged || stats.Delivered != 1 {
		t.Errorf("unwedged stats = %+v (err %v)", stats, err)
	}

	// Closing the agent releases a fresh wedge so no goroutine leaks.
	if err := c.Wedge(); err != nil {
		t.Fatal(err)
	}
	blocked := make(chan struct{})
	go func() {
		agent.Deliver("alpha", wire.MsgID{Origin: 1, Seq: 2})
		close(blocked)
	}()
	time.Sleep(50 * time.Millisecond)
	agent.Close()
	select {
	case <-blocked:
	case <-time.After(5 * time.Second):
		t.Fatal("Deliver leaked past agent Close")
	}
}

func TestParseReady(t *testing.T) {
	ri, ok := parseReady("SOAK ready addr=127.0.0.1:1 control=127.0.0.1:9 id=77 pid=123")
	if !ok || ri.addr != "127.0.0.1:1" || ri.control != "127.0.0.1:9" || ri.id != 77 || ri.pid != 123 {
		t.Errorf("parseReady = %+v ok=%v", ri, ok)
	}
	if ri.metrics != "" {
		t.Errorf("metrics parsed from a line without it: %q", ri.metrics)
	}
	ri, ok = parseReady("SOAK ready addr=127.0.0.1:1 control=127.0.0.1:9 id=77 pid=123 metrics=127.0.0.1:9")
	if !ok || ri.metrics != "127.0.0.1:9" {
		t.Errorf("parseReady with metrics = %+v ok=%v", ri, ok)
	}
	for _, bad := range []string{
		"node 12 listening on 127.0.0.1:1",
		"SOAK ready addr=127.0.0.1:1",
		"[recv a/1] SOAK ready addr=x control=y",
	} {
		if _, ok := parseReady(bad); ok {
			t.Errorf("parseReady accepted %q", bad)
		}
	}
}
