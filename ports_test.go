package ringcast_test

// Source-scan guard: tests and examples must bind ephemeral listeners.
//
// A fixed listen port makes the suite flaky under parallel `go test -p` and
// on CI machines with unrelated services; every listener in test or example
// code must ask the kernel for a port (":0") and read the assignment back.
// This scan walks every _test.go file and every file under examples/ and
// rejects loopback host:port string literals with a real port number.
// Deliberate non-bound placeholders are allowed: ports 1 and 9 (RFC 863's
// discard neighborhood) mark intentionally unreachable or never-dialed
// addresses, and test vectors that only exercise address parsing or
// deterministic encoding may carry any port when listed below.

import (
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// portLiteral matches loopback host:port string literals in source text.
var portLiteral = regexp.MustCompile(`"(?:127\.0\.0\.1|localhost|\[::1\]):(\d+)"`)

// parseOnlyFiles never bind or dial: their literals are codec test vectors.
var parseOnlyFiles = map[string]bool{
	"internal/wire/wire_test.go": true,
}

func TestTestsAndExamplesBindEphemeralPorts(t *testing.T) {
	var scan []string
	err := filepath.Walk(".", func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			if name := info.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, "_test.go") ||
			(strings.HasPrefix(path, "examples"+string(filepath.Separator)) && strings.HasSuffix(path, ".go")) {
			scan = append(scan, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(scan) < 10 {
		t.Fatalf("scan found only %d files; the walk is broken", len(scan))
	}
	for _, path := range scan {
		if parseOnlyFiles[filepath.ToSlash(path)] {
			continue
		}
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(src), "\n") {
			for _, m := range portLiteral.FindAllStringSubmatch(line, -1) {
				port, _ := strconv.Atoi(m[1])
				if port == 0 || port == 1 || port == 9 {
					continue
				}
				t.Errorf("%s:%d: literal %s binds or names a fixed port; use \":0\" and read the assigned address back",
					path, i+1, m[0])
			}
		}
	}
}
