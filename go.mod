module ringcast

go 1.22
