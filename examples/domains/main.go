// Domain-proximity dissemination (paper, Section 8): nodes build their ring
// IDs from reversed DNS names ("ch.ethz.inf" + random suffix), so the ring
// self-organizes sorted by domain and most d-link hops stay inside one
// organization — without any changes to the protocols.
//
//	go run ./examples/domains
package main

import (
	"fmt"
	"math/rand"
	"os"
	"sort"

	"ringcast/internal/cyclon"
	"ringcast/internal/ident"
	"ringcast/internal/sim"
	"ringcast/internal/vicinity"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "domains:", err)
		os.Exit(1)
	}
}

func run() error {
	domains := []string{
		"inf.ethz.ch", "few.vu.nl", "cs.cornell.edu", "dcs.gla.uk", "lip6.fr",
	}
	const perDomain = 40
	rng := rand.New(rand.NewSource(99))

	ids := make([]ident.ID, 0, perDomain*len(domains))
	domainOf := make(map[ident.ID]string)
	used := make(map[ident.ID]bool)
	for _, dom := range domains {
		for i := 0; i < perDomain; i++ {
			id := ident.DomainID(dom, rng.Uint32())
			for used[id] {
				id = ident.DomainID(dom, rng.Uint32())
			}
			used[id] = true
			ids = append(ids, id)
			domainOf[id] = dom
		}
	}

	cfg := sim.Config{
		N:           len(ids),
		Cyclon:      cyclon.DefaultConfig(),
		Vicinity:    vicinity.DefaultConfig(),
		UseVicinity: true,
		Seed:        99,
		NodeIDs:     ids,
	}
	nw, err := sim.New(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("%d nodes across %d domains self-organizing...\n", len(ids), len(domains))
	cycles, conv := nw.WarmUp(100, 1000)
	fmt.Printf("converged after %d cycles (ring %.4f)\n\n", cycles, conv)

	// Walk the ring and render it as domain arcs.
	sorted := append([]ident.ID(nil), nw.AliveIDs()...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	fmt.Println("ring walk (one letter per node, by domain):")
	letters := map[string]byte{}
	for i, dom := range domains {
		letters[dom] = byte('A' + i)
	}
	line := make([]byte, len(sorted))
	arcs := 0
	for i, id := range sorted {
		line[i] = letters[domainOf[id]]
		prev := sorted[(i-1+len(sorted))%len(sorted)]
		if domainOf[id] != domainOf[prev] {
			arcs++
		}
	}
	fmt.Printf("  %s\n\n", line)
	for _, dom := range domains {
		fmt.Printf("  %c = %s (reversed: %s)\n", letters[dom], dom, ident.ReverseDomain(dom))
	}
	fmt.Printf("\ncontiguous domain arcs on the ring: %d (ideal: %d)\n", arcs, len(domains))
	if arcs == len(domains) {
		fmt.Println("every domain occupies exactly one arc: intra-domain d-link traffic stays local")
	}
	return nil
}
