// Quickstart: spin up a 64-node live RingCast cluster in one process,
// let it self-organize, publish a message, and watch it reach every node.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"
	"sort"
	"sync/atomic"
	"time"

	"ringcast/internal/ident"
	"ringcast/internal/node"
	"ringcast/internal/transport"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	const clusterSize = 64

	// One in-memory fabric hosts the whole cluster. Swap in
	// transport.ListenTCP to run the same code across machines.
	fabric := transport.NewInMemNetwork()

	var delivered atomic.Int64
	nodes := make([]*node.Node, 0, clusterSize)
	for i := 0; i < clusterSize; i++ {
		ep, err := fabric.Endpoint(fmt.Sprintf("node-%02d", i))
		if err != nil {
			return err
		}
		cfg := node.DefaultConfig()
		cfg.Fanout = 3
		cfg.GossipInterval = 5 * time.Millisecond
		cfg.Seed = int64(i + 1)
		nd, err := node.New(cfg, ep, func(d node.Delivery) {
			delivered.Add(1)
		})
		if err != nil {
			return err
		}
		nodes = append(nodes, nd)
	}
	defer func() {
		for _, nd := range nodes {
			nd.Close()
		}
	}()

	// Everyone joins through the first node, then gossips.
	for _, nd := range nodes[1:] {
		if err := nd.Join(nodes[0].Addr()); err != nil {
			return err
		}
	}
	for _, nd := range nodes {
		if err := nd.Start(); err != nil {
			return err
		}
	}

	fmt.Printf("started %d nodes, waiting for the ring to form...\n", clusterSize)
	waitForRing(nodes)

	pred, succ, _ := nodes[0].RingNeighbors()
	fmt.Printf("node %s sits between %s and %s on the ring\n", nodes[0].ID(), pred.Node, succ.Node)

	fmt.Println("publishing a message from node 7...")
	start := time.Now()
	if _, err := nodes[7].Publish([]byte("hello, hybrid dissemination!")); err != nil {
		return err
	}
	for delivered.Load() < clusterSize {
		if time.Since(start) > 10*time.Second {
			return fmt.Errorf("only %d/%d deliveries", delivered.Load(), clusterSize)
		}
		time.Sleep(time.Millisecond)
	}
	fmt.Printf("delivered to all %d nodes in %v\n", clusterSize, time.Since(start).Round(time.Millisecond))

	total := node.Stats{}
	for _, nd := range nodes {
		s := nd.Stats()
		total.Forwarded += s.Forwarded
		total.Duplicates += s.Duplicates
	}
	fmt.Printf("message overhead: %d forwards, %d suppressed duplicates\n",
		total.Forwarded, total.Duplicates)
	return nil
}

// waitForRing blocks until every node's pred/succ links match the global
// sorted ring — the converged state RINGCAST's completeness guarantee
// rests on.
func waitForRing(nodes []*node.Node) {
	ids := make([]ident.ID, len(nodes))
	pos := make(map[ident.ID]int, len(nodes))
	for i, nd := range nodes {
		ids[i] = nd.ID()
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for i, id := range ids {
		pos[id] = i
	}
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		converged := true
		for _, nd := range nodes {
			pred, succ, ok := nd.RingNeighbors()
			i := pos[nd.ID()]
			if !ok ||
				succ.Node != ids[(i+1)%len(ids)] ||
				pred.Node != ids[(i-1+len(ids))%len(ids)] {
				converged = false
				break
			}
		}
		if converged {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}
