// Topic-based publish/subscribe (paper, Section 8): each topic forms its
// own dissemination overlay; subscribers join only the overlays of the
// topics they care about.
//
// Twelve peers subscribe to overlapping subsets of {headlines, sports,
// weather}; one event per topic is published and the example verifies that
// exactly the subscribers receive it.
//
//	go run ./examples/pubsub-news
package main

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"ringcast/internal/node"
	"ringcast/internal/pubsub"
	"ringcast/internal/transport"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pubsub-news:", err)
		os.Exit(1)
	}
}

func run() error {
	fabric := transport.NewInMemNetwork()

	subscriptions := map[string][]int{
		"headlines": {0, 1, 2, 3, 4, 5, 6, 7},
		"sports":    {0, 2, 4, 6, 8, 9},
		"weather":   {1, 3, 5, 7, 8, 10, 11},
	}

	const peers = 12
	var mu sync.Mutex
	received := make(map[string]map[int]string) // topic -> peer -> payload
	for topic := range subscriptions {
		received[topic] = make(map[int]string)
	}

	all := make([]*pubsub.Peer, peers)
	for i := 0; i < peers; i++ {
		ep, err := fabric.Endpoint(fmt.Sprintf("peer-%02d", i))
		if err != nil {
			return err
		}
		cfg := node.DefaultConfig()
		cfg.GossipInterval = 5 * time.Millisecond
		cfg.Fanout = 3
		cfg.Seed = int64(i + 1)
		p, err := pubsub.NewPeer(ep, cfg)
		if err != nil {
			return err
		}
		all[i] = p
	}
	defer func() {
		for _, p := range all {
			p.Close()
		}
	}()

	// Subscribe: bootstrap each topic through its first subscriber.
	for topic, members := range subscriptions {
		var bootstrap []string
		for _, i := range members {
			i := i
			topic := topic
			err := all[i].Subscribe(topic, bootstrap, func(e pubsub.Event) {
				mu.Lock()
				received[e.Topic][i] = string(e.Msg.Body)
				mu.Unlock()
			})
			if err != nil {
				return err
			}
			bootstrap = append(bootstrap, all[i].Addr())
		}
	}

	fmt.Println("letting the three topic overlays self-organize...")
	time.Sleep(400 * time.Millisecond)

	events := map[string]string{
		"headlines": "middleware 2007 proceedings published",
		"sports":    "ajax beats feyenoord 3-1",
		"weather":   "rain expected over amsterdam",
	}
	for topic, body := range events {
		publisher := subscriptions[topic][0]
		if _, err := all[publisher].Publish(topic, []byte(body)); err != nil {
			return err
		}
	}

	// Wait until every subscriber of every topic got its event.
	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		done := true
		for topic, members := range subscriptions {
			if len(received[topic]) < len(members) {
				done = false
			}
		}
		mu.Unlock()
		if done {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("timed out waiting for deliveries")
		}
		time.Sleep(5 * time.Millisecond)
	}

	topics := make([]string, 0, len(subscriptions))
	for t := range subscriptions {
		topics = append(topics, t)
	}
	sort.Strings(topics)
	for _, topic := range topics {
		mu.Lock()
		got := make([]int, 0, len(received[topic]))
		for i := range received[topic] {
			got = append(got, i)
		}
		mu.Unlock()
		sort.Ints(got)
		fmt.Printf("%-10s -> peers %v\n", topic, got)
		// Cross-check: nobody outside the subscription received it.
		want := map[int]bool{}
		for _, i := range subscriptions[topic] {
			want[i] = true
		}
		for _, i := range got {
			if !want[i] {
				return fmt.Errorf("peer %d received %q without subscribing", i, topic)
			}
		}
	}
	fmt.Println("every event reached exactly its topic's subscribers")

	// The transport.Stats API makes the runtime's behavior observable:
	// frames moved, backpressure drops, and frames for topics a peer never
	// subscribed to (strays).
	var agg transport.Stats
	var strays int64
	for _, p := range all {
		st := p.TransportStats()
		agg.FramesSent += st.FramesSent
		agg.BytesSent += st.BytesSent
		agg.Drops += st.Drops
		strays += p.StrayFrames()
	}
	fmt.Printf("transport totals: %d frames / %d bytes sent, %d dropped under backpressure, %d strays\n",
		agg.FramesSent, agg.BytesSent, agg.Drops, strays)
	return nil
}
