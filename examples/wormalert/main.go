// Worm alert: the paper's motivating scenario of "world-wide worm alert
// notifications" (Section 1). A security sensor must push an alert to every
// node of a 5,000-node network, fast, with the smallest possible fanout.
//
// The example disseminates the same alert with RANDCAST and RINGCAST at
// F=2..4 and prints who actually protected the whole fleet.
//
//	go run ./examples/wormalert
package main

import (
	"fmt"
	"os"

	"ringcast/internal/core"
	"ringcast/internal/dissem"
	"ringcast/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "wormalert:", err)
		os.Exit(1)
	}
}

func run() error {
	const fleet = 5000
	fmt.Printf("fleet of %d hosts self-organizing (CYCLON + VICINITY)...\n", fleet)

	cfg := sim.DefaultConfig(fleet)
	cfg.Seed = 2024
	nw, err := sim.New(cfg)
	if err != nil {
		return err
	}
	cycles, conv := nw.WarmUp(100, 1000)
	fmt.Printf("overlay ready after %d cycles (ring convergence %.4f)\n\n", cycles, conv)

	o := dissem.Snapshot(nw)
	sensor := o.IDs()[0] // the sensor that spots the worm

	fmt.Println("disseminating the worm alert:")
	fmt.Println("proto     F   hosts alerted   missed   hops   messages")
	for _, sel := range []core.Selector{core.RandCast{}, core.RingCast{}} {
		for _, f := range []int{2, 3, 4} {
			d, err := dissem.RunOpts(o, sensor, sel, f, nw.Rand(), dissem.Options{SkipLoad: true})
			if err != nil {
				return err
			}
			missed := d.AliveTotal - d.Reached
			fmt.Printf("%-9s %d   %5d/%d     %6d   %4d   %8d\n",
				sel.Name(), f, d.Reached, d.AliveTotal, missed, d.Hops(), d.TotalMsgs())
		}
	}
	fmt.Println("\nRingCast alerts every host even at F=2; RandCast leaves stragglers")
	fmt.Println("unpatched unless the fanout (and message bill) grows much larger.")
	return nil
}
