// Catastrophic failure (paper, Section 7.2): 10% of a 10,000-node network
// dies at once, the overlay gets no chance to heal, and a message must
// still spread. The example compares RANDCAST and RINGCAST over the same
// damaged overlay and then shows how quickly continued gossip repairs the
// ring.
//
//	go run ./examples/catastrophe
package main

import (
	"fmt"
	"os"

	"ringcast/internal/core"
	"ringcast/internal/dissem"
	"ringcast/internal/metrics"
	"ringcast/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "catastrophe:", err)
		os.Exit(1)
	}
}

func run() error {
	const n = 10000
	const failFraction = 0.10
	const runs = 20

	fmt.Printf("building a %d-node overlay...\n", n)
	cfg := sim.DefaultConfig(n)
	cfg.Seed = 7
	nw, err := sim.New(cfg)
	if err != nil {
		return err
	}
	cycles, conv := nw.WarmUp(100, 1000)
	fmt.Printf("converged after %d cycles (ring %.4f)\n", cycles, conv)

	o := dissem.Snapshot(nw)
	killed := o.KillFraction(failFraction, nw.Rand())
	fmt.Printf("catastrophe: %d nodes died simultaneously; no self-healing allowed\n\n", killed)

	fmt.Println("disseminating over the damaged overlay (F=3, 20 messages each):")
	for _, sel := range []core.Selector{core.RandCast{}, core.RingCast{}} {
		var acc metrics.Accumulator
		for r := 0; r < runs; r++ {
			origin, err := o.RandomAliveOrigin(nw.Rand())
			if err != nil {
				return err
			}
			d, err := dissem.RunOpts(o, origin, sel, 3, nw.Rand(), dissem.Options{SkipLoad: true})
			if err != nil {
				return err
			}
			acc.Add(d)
		}
		agg := acc.Finalize()
		fmt.Printf("  %-9s miss ratio %.5f%%  complete %.0f%%  lost msgs %.0f\n",
			sel.Name(), agg.MeanMissRatio*100, agg.CompleteFraction*100, agg.MeanLost)
	}

	// Now let gossip heal the overlay and measure again.
	fmt.Println("\nletting the survivors gossip for 60 cycles to self-heal...")
	nw.RunCycles(60)
	fmt.Printf("ring convergence among survivors: %.4f\n", nw.RingConvergence())
	healed := dissem.Snapshot(nw)
	for _, sel := range []core.Selector{core.RandCast{}, core.RingCast{}} {
		var acc metrics.Accumulator
		for r := 0; r < runs; r++ {
			origin, err := healed.RandomAliveOrigin(nw.Rand())
			if err != nil {
				return err
			}
			d, err := dissem.RunOpts(healed, origin, sel, 3, nw.Rand(), dissem.Options{SkipLoad: true})
			if err != nil {
				return err
			}
			acc.Add(d)
		}
		agg := acc.Finalize()
		fmt.Printf("  %-9s miss ratio %.5f%%  complete %.0f%%\n",
			sel.Name(), agg.MeanMissRatio*100, agg.CompleteFraction*100)
	}
	fmt.Println("\nafter healing, RingCast is deterministic-complete again; RandCast still gambles.")
	return nil
}
