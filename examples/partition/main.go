// Network partitions through the scenario engine, on both execution
// surfaces:
//
//  1. Simulated: an 800-node converged overlay splits into two ring arcs at
//     hop 0. RingCast is confined to the origin's arc (its completeness
//     guarantee is scoped by connectivity); healing the split at hop 4 —
//     while copies are still in flight — restores complete dissemination.
//
//  2. Live: a 16-node in-process cluster over fault-injecting transports.
//     The same scenario timeline partitions the real nodes mid-publish,
//     the injected drops surface through the transport Stats plumbing, and
//     a heal lets the next publish cross again.
//
//     go run ./examples/partition
package main

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"
	"time"

	"ringcast/internal/core"
	"ringcast/internal/dissem"
	"ringcast/internal/ident"
	"ringcast/internal/metrics"
	"ringcast/internal/node"
	"ringcast/internal/scenario"
	"ringcast/internal/sim"
	"ringcast/internal/transport"
)

func main() {
	if err := simulated(); err != nil {
		fmt.Fprintln(os.Stderr, "partition:", err)
		os.Exit(1)
	}
	if err := live(); err != nil {
		fmt.Fprintln(os.Stderr, "partition:", err)
		os.Exit(1)
	}
}

// simulated compares an unhealed two-way split against one that heals at
// hop 4, over the same converged overlay.
func simulated() error {
	const n = 800
	fmt.Printf("building a %d-node overlay...\n", n)
	cfg := sim.DefaultConfig(n)
	cfg.Seed = 9
	nw, err := sim.New(cfg)
	if err != nil {
		return err
	}
	cycles, conv := nw.WarmUp(100, 1000)
	fmt.Printf("converged after %d cycles (ring %.4f)\n\n", cycles, conv)
	o := dissem.Snapshot(nw)

	scenarios := []scenario.Scenario{
		{Name: "split", Events: []scenario.Event{scenario.Partition(0, 2)}},
		{Name: "split+heal@4", Events: []scenario.Event{scenario.Partition(0, 2), scenario.Heal(4)}},
	}
	fmt.Println("20 disseminations each (F=3), same overlay, same origins:")
	for _, sc := range scenarios {
		comp, err := scenario.Compile(sc, o)
		if err != nil {
			return err
		}
		for _, sel := range []core.Selector{core.RandCast{}, core.RingCast{}} {
			var acc metrics.Accumulator
			for r := int64(0); r < 20; r++ {
				origin, err := o.RandomAliveOrigin(rand.New(rand.NewSource(100 + r)))
				if err != nil {
					return err
				}
				st := comp.Get()
				d, err := dissem.RunOpts(o, origin, sel, 3, rand.New(rand.NewSource(r)),
					dissem.Options{SkipLoad: true, Faults: st})
				comp.Put(st)
				if err != nil {
					return err
				}
				acc.Add(d)
			}
			agg := acc.Finalize()
			fmt.Printf("  %-13s %-9s hit %6.2f%%  complete %3.0f%%  blocked %4.0f msgs  %4.1f hops\n",
				sc.Name, sel.Name(), (1-agg.MeanMissRatio)*100, agg.CompleteFraction*100,
				agg.MeanBlocked, agg.MeanHops)
		}
	}
	fmt.Println("\nthe unhealed split confines even RingCast to the origin's arc;")
	fmt.Println("healing at hop 4 — with copies still in flight — restores completeness.")
	return nil
}

// live drives the same timeline against real nodes over fault-injected
// transports.
func live() error {
	const clusterSize = 16
	fmt.Printf("\nstarting a live %d-node cluster over fault-injecting transports...\n", clusterSize)
	fabric := transport.NewInMemNetwork()

	var mu sync.Mutex
	delivered := make(map[string]int)
	var members []scenario.Member
	var injectors []*transport.FaultInjector
	var nodes []*node.Node
	for i := 0; i < clusterSize; i++ {
		ep, err := fabric.Endpoint(fmt.Sprintf("node-%02d", i))
		if err != nil {
			return err
		}
		fi := transport.WrapFaults(ep, int64(i+1))
		cfg := node.DefaultConfig()
		cfg.GossipInterval = 10 * time.Millisecond
		cfg.Seed = int64(i + 1)
		nd, err := node.New(cfg, fi, func(d node.Delivery) {
			mu.Lock()
			delivered[string(d.Msg.Body)]++
			mu.Unlock()
		})
		if err != nil {
			return err
		}
		nodes = append(nodes, nd)
		injectors = append(injectors, fi)
		members = append(members, scenario.Member{Addr: nd.Addr(), ID: nd.ID(), Faults: fi})
	}
	defer func() {
		for _, nd := range nodes {
			nd.Close()
		}
	}()
	for _, nd := range nodes[1:] {
		if err := nd.Join(nodes[0].Addr()); err != nil {
			return err
		}
	}
	for _, nd := range nodes {
		if err := nd.Start(); err != nil {
			return err
		}
	}
	waitForRing(nodes, 5*time.Second)

	count := func(body string) int {
		mu.Lock()
		defer mu.Unlock()
		return delivered[body]
	}
	publishAndWait := func(body string, deadline time.Duration) int {
		if _, err := nodes[0].Publish([]byte(body)); err != nil {
			return 0
		}
		until := time.Now().Add(deadline)
		for time.Now().Before(until) && count(body) < clusterSize {
			time.Sleep(2 * time.Millisecond)
		}
		return count(body)
	}

	fmt.Printf("healthy publish:      reached %d/%d nodes\n",
		publishAndWait("healthy", 3*time.Second), clusterSize)

	drv, err := scenario.NewDriver(scenario.Scenario{
		Name:   "live-split",
		Events: []scenario.Event{scenario.Partition(0, 2), scenario.Heal(1)},
	}, members)
	if err != nil {
		return err
	}
	// Keep the split short relative to VICINITY's MaxAge (30 cycles): a
	// partition outliving every cross-arc view entry cannot self-heal —
	// that is the simulators' no-self-healing worst case, not this demo.
	drv.Advance(0)
	reached := publishAndWait("under-partition", 250*time.Millisecond)
	var drops int64
	for _, fi := range injectors {
		drops += fi.InjectedDrops()
	}
	fmt.Printf("partitioned publish:  reached %d/%d nodes, %d frames black-holed (visible in Stats().Drops)\n",
		reached, clusterSize, drops)

	// Let the survivors re-form the ring after the heal — dissemination is
	// one-shot, so a publish racing the repair can legitimately miss nodes.
	drv.Advance(1)
	waitForRing(nodes, 5*time.Second)
	fmt.Printf("healed publish:       reached %d/%d nodes\n",
		publishAndWait("after-heal", 5*time.Second), clusterSize)
	return nil
}

// waitForRing blocks until every node's pred/succ links match the global
// sorted ring, or the deadline passes (the demo then proceeds anyway).
func waitForRing(nodes []*node.Node, limit time.Duration) {
	ids := make([]ident.ID, len(nodes))
	for i, nd := range nodes {
		ids[i] = nd.ID()
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	pos := make(map[ident.ID]int, len(ids))
	for i, id := range ids {
		pos[id] = i
	}
	deadline := time.Now().Add(limit)
	for time.Now().Before(deadline) {
		converged := true
		for _, nd := range nodes {
			pred, succ, ok := nd.RingNeighbors()
			i := pos[nd.ID()]
			if !ok ||
				succ.Node != ids[(i+1)%len(ids)] ||
				pred.Node != ids[(i-1+len(ids))%len(ids)] {
				converged = false
				break
			}
		}
		if converged {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
}
