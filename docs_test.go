// Documentation gates, run as ordinary tests (and as dedicated CI steps):
//
//   - TestMarkdownLinks is the repository's markdown link checker: every
//     relative link in the top-level documents must resolve to a file or
//     directory in the tree. External links are recognized but not fetched
//     (CI must not flake on third-party outages).
//   - TestPackageDocsStateContract asserts every internal package's doc
//     comment states its determinism contract or its paper anchor — the
//     documentation invariant this repository maintains.
//   - TestExportedSymbolsDocumented is the doc-comment gate: exported
//     declarations in the packages this repository curates must carry doc
//     comments, so godoc stays complete as the codebase grows.
//   - TestDeterministicMarkersMatchArchitecture pins the ARCHITECTURE.md
//     "Enforced contracts" package list to the source: every package the
//     document claims is deterministic must carry the
//     //ringcast:deterministic marker, and every marked package must be in
//     the document's list.
//   - TestWaiversMatchArchitecture pins the ARCHITECTURE.md "Waiver debt"
//     table to the source: every //lint: waiver in the tree must have a
//     table row (analyzer, file, justification, site count) and vice versa,
//     so suppression debt stays enumerated in one audited place.
package ringcast_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// checkedDocs are the documents the markdown link checker walks.
var checkedDocs = []string{"README.md", "ARCHITECTURE.md", "CHANGES.md"}

// mdLink matches markdown inline links: [text](target).
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

func TestMarkdownLinks(t *testing.T) {
	for _, doc := range checkedDocs {
		data, err := os.ReadFile(doc)
		if err != nil {
			t.Fatalf("%s: %v", doc, err)
		}
		links := mdLink.FindAllStringSubmatch(string(data), -1)
		if doc == "README.md" && len(links) == 0 {
			t.Errorf("%s: no links found — checker regexp broken?", doc)
		}
		for _, m := range links {
			target := m[1]
			switch {
			case strings.HasPrefix(target, "http://"), strings.HasPrefix(target, "https://"),
				strings.HasPrefix(target, "mailto:"):
				continue // external: recognized, not fetched
			case strings.HasPrefix(target, "#"):
				continue // intra-document anchor
			}
			target = strings.Split(target, "#")[0]
			if _, err := os.Stat(target); err != nil {
				t.Errorf("%s: broken relative link %q", doc, m[1])
			}
		}
	}
}

// determinismWords are the markers a package doc comment must contain at
// least one of: either it states its determinism/randomness contract, or it
// anchors itself to the paper it reproduces.
var determinismWords = []string{"determinis", "random", "seed", "Section", "paper"}

func TestPackageDocsStateContract(t *testing.T) {
	pkgs, err := filepath.Glob("internal/*")
	if err != nil {
		t.Fatal(err)
	}
	for _, dir := range pkgs {
		if st, err := os.Stat(dir); err != nil || !st.IsDir() {
			continue
		}
		doc := packageDoc(t, dir)
		if doc == "" {
			t.Errorf("%s: no package doc comment", dir)
			continue
		}
		ok := false
		for _, w := range determinismWords {
			if strings.Contains(doc, w) {
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s: package comment states neither a determinism contract nor a paper anchor", dir)
		}
		if len(strings.Fields(doc)) < 25 {
			t.Errorf("%s: package comment is a stub (%d words); state what the package is, its paper section, and its determinism contract", dir, len(strings.Fields(doc)))
		}
	}
}

// packageDoc returns the first non-test package doc comment found in dir.
func packageDoc(t *testing.T, dir string) string {
	t.Helper()
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.PackageClauseOnly)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if f.Doc != nil {
			return f.Doc.Text()
		}
	}
	return ""
}

// TestExportedSymbolsDocumented walks every internal package and the
// commands and reports exported declarations without doc comments. This is
// the CI doc gate: it fails the build when an undocumented exported symbol
// lands.
func TestExportedSymbolsDocumented(t *testing.T) {
	var dirs []string
	for _, glob := range []string{"internal/*", "cmd/*"} {
		found, err := filepath.Glob(glob)
		if err != nil {
			t.Fatal(err)
		}
		dirs = append(dirs, found...)
	}
	for _, dir := range dirs {
		if st, err := os.Stat(dir); err != nil || !st.IsDir() {
			continue
		}
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for _, pkg := range pkgs {
			for path, f := range pkg.Files {
				for _, decl := range f.Decls {
					checkDeclDocumented(t, fset, path, decl)
				}
			}
		}
	}
}

// exportedReceiver reports whether a method's receiver names an exported
// type.
func exportedReceiver(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	typ := recv.List[0].Type
	for {
		switch tt := typ.(type) {
		case *ast.StarExpr:
			typ = tt.X
		case *ast.IndexExpr:
			typ = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}

func checkDeclDocumented(t *testing.T, fset *token.FileSet, path string, decl ast.Decl) {
	t.Helper()
	switch d := decl.(type) {
	case *ast.FuncDecl:
		// Methods on unexported receivers are not part of the public godoc
		// surface (heap.Interface impls on private queues and the like).
		if d.Recv != nil && !exportedReceiver(d.Recv) {
			return
		}
		if d.Name.IsExported() && d.Doc == nil {
			t.Errorf("%s: exported %s %s has no doc comment", fset.Position(d.Pos()), "func", d.Name.Name)
		}
	case *ast.GenDecl:
		// A doc comment on the group covers all its members (standard Go
		// practice for const/var blocks).
		groupDoc := d.Doc != nil
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
					t.Errorf("%s: exported type %s has no doc comment", fset.Position(s.Pos()), s.Name.Name)
				}
			case *ast.ValueSpec:
				if groupDoc || s.Doc != nil || s.Comment != nil {
					continue
				}
				for _, name := range s.Names {
					if name.IsExported() {
						t.Errorf("%s: exported %s has no doc comment", fset.Position(s.Pos()), name.Name)
					}
				}
			}
		}
	}
}

// detMarkerRe matches the package-scope determinism marker directive, with
// or without a space after the slashes (the same shape internal/lint
// accepts).
var detMarkerRe = regexp.MustCompile(`(?m)^//[ \t]?ringcast:deterministic\b`)

// archDetListRe brackets the sentence in ARCHITECTURE.md "Enforced
// contracts" that enumerates the deterministic packages.
var archDetListRe = regexp.MustCompile(`(?s)The marked packages are(.*?)cannot drift from the tree`)

// archDetPkgRe extracts the backticked package paths from that sentence.
var archDetPkgRe = regexp.MustCompile("`(internal/[a-z]+)`")

func TestDeterministicMarkersMatchArchitecture(t *testing.T) {
	data, err := os.ReadFile("ARCHITECTURE.md")
	if err != nil {
		t.Fatal(err)
	}
	span := archDetListRe.FindSubmatch(data)
	if span == nil {
		t.Fatal(`ARCHITECTURE.md no longer contains the "The marked packages are ... cannot drift from the tree" sentence the marker gate parses; update archDetListRe alongside the document`)
	}
	listed := map[string]bool{}
	for _, m := range archDetPkgRe.FindAllSubmatch(span[1], -1) {
		listed[string(m[1])] = true
	}
	if len(listed) < 5 {
		t.Fatalf("parsed only %d deterministic packages from ARCHITECTURE.md; the list sentence looks broken", len(listed))
	}

	for dir := range listed {
		if !packageCarriesDetMarker(t, dir) {
			t.Errorf("%s is listed as deterministic in ARCHITECTURE.md but no non-test file carries //ringcast:deterministic", dir)
		}
	}

	dirs, err := filepath.Glob("internal/*")
	if err != nil {
		t.Fatal(err)
	}
	for _, dir := range dirs {
		if st, err := os.Stat(dir); err != nil || !st.IsDir() {
			continue
		}
		if packageCarriesDetMarker(t, dir) && !listed[dir] {
			t.Errorf("%s carries //ringcast:deterministic but is missing from the ARCHITECTURE.md \"Enforced contracts\" package list", dir)
		}
	}
}

// sourceWaiverRe is the same shape internal/lint's waiver parser accepts: a
// comment that *starts* with //lint:<analyzer>, followed by the
// justification. Anchoring at the comment start keeps prose that merely
// mentions `//lint:` mid-sentence out of the debt ledger.
var sourceWaiverRe = regexp.MustCompile(`^//[ \t]?lint:([a-z]+)\b[ \t]*(.*)$`)

// waiverDebtSection brackets the ARCHITECTURE.md table between the "Waiver
// debt" heading and the next heading.
var waiverDebtSection = regexp.MustCompile(`(?s)### Waiver debt(.*?)\n#`)

// waiverDebtRow parses one table row: | `analyzer` | `file` | reason | n |.
var waiverDebtRow = regexp.MustCompile("(?m)^\\| `([a-z]+)` \\| `([^`]+)` \\| (.+?) \\| ([0-9]+) \\|$")

// TestWaiversMatchArchitecture is the waiver-debt gate: the set of live
// `//lint:` waivers in non-test source (testdata fixtures excluded — those
// exist to exercise the waiver machinery, not to suppress real findings)
// must equal the ARCHITECTURE.md "Waiver debt" table, including per-reason
// site counts, in both directions.
func TestWaiversMatchArchitecture(t *testing.T) {
	inSource := map[string]int{}
	for _, root := range []string{"internal", "cmd"} {
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				if d.Name() == "testdata" {
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			fset := token.NewFileSet()
			f, perr := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if perr != nil {
				return perr
			}
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := sourceWaiverRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					key := m[1] + " | " + filepath.ToSlash(path) + " | " + strings.TrimSpace(m[2])
					inSource[key]++
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	data, err := os.ReadFile("ARCHITECTURE.md")
	if err != nil {
		t.Fatal(err)
	}
	section := waiverDebtSection.FindSubmatch(data)
	if section == nil {
		t.Fatal(`ARCHITECTURE.md no longer contains the "### Waiver debt" section the waiver gate parses; update waiverDebtSection alongside the document`)
	}
	inTable := map[string]int{}
	for _, row := range waiverDebtRow.FindAllSubmatch(section[1], -1) {
		n, err := strconv.Atoi(string(row[4]))
		if err != nil || n < 1 {
			t.Fatalf("waiver-debt row %q: bad site count", row[0])
		}
		inTable[string(row[1])+" | "+string(row[2])+" | "+string(row[3])] += n
	}
	if len(inTable) == 0 {
		t.Fatal("parsed zero rows from the ARCHITECTURE.md waiver-debt table; the row regexp looks broken")
	}

	for key, n := range inSource {
		if inTable[key] != n {
			t.Errorf("waiver debt drift: source has %d site(s) of [%s], ARCHITECTURE.md table records %d — update the Waiver debt table", n, key, inTable[key])
		}
	}
	for key, n := range inTable {
		if inSource[key] != n {
			t.Errorf("waiver debt drift: ARCHITECTURE.md table records %d site(s) of [%s], source has %d — update the Waiver debt table", n, key, inSource[key])
		}
	}
}

// packageCarriesDetMarker reports whether any non-test Go file directly in
// dir contains the //ringcast:deterministic directive.
func packageCarriesDetMarker(t *testing.T, dir string) bool {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("%s: %v", dir, err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if detMarkerRe.Match(data) {
			return true
		}
	}
	return false
}
